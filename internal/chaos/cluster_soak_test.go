package chaos

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/hints"
	"coordattack/internal/mc"
	"coordattack/internal/queue"
	"coordattack/internal/service"
	"coordattack/internal/store"
)

// clusterRunLedger counts successful engine runs per seed across every
// node and every restart in the soak — the cluster-wide exactly-once
// ledger. Every seed is submitted to exactly one node, so each must
// complete exactly one engine run no matter which nodes die.
type clusterRunLedger struct {
	mu   sync.Mutex
	runs map[uint64]int
}

func (l *clusterRunLedger) add(seed uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.runs == nil {
		l.runs = make(map[uint64]int)
	}
	l.runs[seed]++
}

func (l *clusterRunLedger) count(seed uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.runs[seed]
}

// chaosSwap lets one fixed listener outlive daemon "kills": set(nil)
// answers 503 exactly like a dead process behind a live load-balancer
// address, so peers see errors, breakers open, and the ring address
// stays stable across restarts.
type chaosSwap struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *chaosSwap) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *chaosSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// soakClusterNode is one member of the chaos cluster: fixed address,
// persistent store and queue directories, and a current daemon
// incarnation that kill/boot replaces.
type soakClusterNode struct {
	t        *testing.T
	name     string
	sh       *chaosSwap
	addr     string
	storeDir string
	queueDir string
	hintDir  string // non-empty: boot opens a durable hinted-handoff log here
	factor   int    // replication factor; 0 = the cluster default
	ledger   *clusterRunLedger

	s        *service.Server
	jl       *queue.Journal
	st       *store.Store
	hl       *hints.Log
	cl       *cluster.Cluster
	net      *PeerNet
	gate     chan struct{}
	gateOnce *sync.Once
}

// boot starts a daemon incarnation over the node's directories. Seeds
// listed in gateSeeds have their engine runs held on the node's gate
// channel until openGate (or job cancellation), pinning jobs mid-run so
// kills land at chosen points.
func (n *soakClusterNode) boot(peers []string, cfg service.Config, plan NetPlan, gateSeeds ...uint64) {
	n.t.Helper()
	jl, err := queue.OpenJournal(n.queueDir, queue.JournalOptions{Logf: n.t.Logf})
	if err != nil {
		n.t.Fatalf("%s: open journal: %v", n.name, err)
	}
	st, err := store.Open(n.storeDir, store.Options{Logf: n.t.Logf})
	if err != nil {
		n.t.Fatalf("%s: open store: %v", n.name, err)
	}
	pn, err := NewPeerNet(nil, plan)
	if err != nil {
		n.t.Fatalf("%s: peer net: %v", n.name, err)
	}
	cl, err := cluster.New(cluster.Options{
		Self:             n.addr,
		Peers:            peers,
		Factor:           n.factor,
		Timeout:          400 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  150 * time.Millisecond,
		Transport:        pn,
		Logf:             n.t.Logf,
	})
	if err != nil {
		n.t.Fatalf("%s: cluster: %v", n.name, err)
	}
	if n.hintDir != "" {
		hl, err := hints.Open(n.hintDir, hints.Options{Logf: n.t.Logf})
		if err != nil {
			n.t.Fatalf("%s: open hints: %v", n.name, err)
		}
		n.hl = hl
		cfg.Hints = hl
	}
	gate := make(chan struct{})
	gated := make(map[uint64]bool, len(gateSeeds))
	for _, seed := range gateSeeds {
		gated[seed] = true
	}
	ledger := n.ledger
	cfg.Journal = jl
	cfg.Store = st
	cfg.Cluster = cl
	cfg.WatchdogInterval = -1
	if cfg.StealInterval == 0 {
		cfg.StealInterval = -1
	}
	if cfg.StealPollInterval == 0 {
		cfg.StealPollInterval = 25 * time.Millisecond
	}
	if cfg.StealPollFailures == 0 {
		// Generous: reclaim-after-lost-thief has its own deterministic
		// crash-schedule test; here a false reclaim during a short thief
		// restart would break the exactly-once ledger.
		cfg.StealPollFailures = 200
	}
	if cfg.RepairInterval == 0 {
		cfg.RepairInterval = 100 * time.Millisecond
	}
	cfg.WrapEngine = func(engine string, next service.RunFunc) service.RunFunc {
		return func(ctx context.Context, spec service.JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
			if gated[spec.Seed] {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			body, err := next(ctx, spec, workers, progress)
			if err == nil {
				ledger.add(spec.Seed)
			}
			return body, err
		}
	}
	n.jl, n.st, n.cl, n.net = jl, st, cl, pn
	n.gate, n.gateOnce = gate, new(sync.Once)
	n.s = service.New(cfg)
	n.sh.set(n.s.Handler())

	s, once, hl := n.s, n.gateOnce, n.hl
	n.t.Cleanup(func() {
		once.Do(func() { close(gate) })
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		jl.Close()
		st.Close()
		if hl != nil {
			hl.Close()
		}
	})
}

func (n *soakClusterNode) openGate() { n.gateOnce.Do(func() { close(n.gate) }) }

// kill is SIGKILL fidelity: the journal degrades first (post-kill
// settles cannot reach disk), the listener answers 503, and the old
// incarnation is abandoned with a cancelled drain.
func (n *soakClusterNode) kill() {
	n.jl.Close()
	if n.hl != nil {
		n.hl.Close()
	}
	n.sh.set(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = n.s.Drain(ctx)
}

// served reports whether addr's peer endpoint holds key's body.
func served(addr, key string) bool {
	resp, err := http.Get(addr + cluster.ResultsPathPrefix + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func soakWait(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// breakerStateOn reads node addr's admin view of peer's breaker.
func breakerStateOn(t *testing.T, addr, peer string) string {
	t.Helper()
	resp, err := http.Get(addr + "/v1/admin/cluster")
	if err != nil {
		return "unreachable"
	}
	defer resp.Body.Close()
	var adm struct {
		Peers []cluster.PeerInfo `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&adm); err != nil {
		return "undecodable"
	}
	for _, p := range adm.Peers {
		if p.Addr == peer {
			return p.Breaker
		}
	}
	return "absent"
}

// TestSoakClusterKillRestartConvergence is the cluster chaos soak: a
// 3-node, replication-factor-2 cluster rides fault-injected peer
// transports (deterministic drops and delays) while the harness kills
// and restarts nodes at the two points the replication and steal
// protocols are most exposed, asserting after each:
//
//   - zero previously-settled result loss: every key that had converged
//     to its replica set stays servable by the survivors while any
//     single node is down, and a node restarted over a wiped store is
//     re-populated by the anti-entropy repair loop;
//   - exactly-once settlement cluster-wide: every submitted seed
//     completes exactly one successful engine run across all nodes and
//     all restarts, including seeds mid-steal-handoff when the thief or
//     the victim dies;
//   - breakers recover: survivors open their breaker toward a dead
//     peer and return to closed after it comes back.
func TestSoakClusterKillRestartConvergence(t *testing.T) {
	ledger := &clusterRunLedger{}
	nodes := make([]*soakClusterNode, 3)
	peers := make([]string, 3)
	for i, name := range []string{"A", "B", "C"} {
		sh := &chaosSwap{}
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		base := t.TempDir()
		nodes[i] = &soakClusterNode{
			t:        t,
			name:     name,
			sh:       sh,
			addr:     srv.URL,
			storeDir: base + "/store",
			queueDir: base + "/queue",
			ledger:   ledger,
		}
		peers[i] = srv.URL
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	// Per-node fault plans: every peer request may be dropped or delayed
	// on a seed-deterministic schedule. Drops degrade fetches to local
	// compute and pushes to repair work — never correctness.
	noise := func(seed uint64) NetPlan {
		return NetPlan{Seed: seed, PDrop: 0.04, PDelay: 0.15, DelayFor: time.Millisecond}
	}
	// Delay-only: steal phases assert an exact run ledger, and a dropped
	// poll burst could legitimately trigger reclaim (at-least-once by
	// design); drops get their coverage in the replication phases.
	calm := func(seed uint64) NetPlan {
		return NetPlan{Seed: seed, PDelay: 0.15, DelayFor: time.Millisecond}
	}
	for i, n := range nodes {
		n.boot(peers, service.Config{Workers: 2}, noise(uint64(100+i)))
	}

	keys := make(map[uint64]string) // seed → canonical key
	submitTo := func(n *soakClusterNode, seed uint64) *service.Status {
		st, err := n.s.Submit(soakSpec(seed))
		if err != nil {
			t.Fatalf("submit seed %d to %s: %v", seed, n.name, err)
		}
		keys[seed] = st.Key
		return st
	}
	holders := func(key string) int {
		count := 0
		for _, n := range nodes {
			if served(n.addr, key) {
				count++
			}
		}
		return count
	}
	converged := func(seeds []uint64) func() bool {
		return func() bool {
			for _, seed := range seeds {
				if holders(keys[seed]) < 2 {
					return false
				}
			}
			return true
		}
	}
	allDoneOn := func(n *soakClusterNode, ids []string) func() bool {
		return func() bool {
			for _, id := range ids {
				st, err := n.s.Get(id)
				if err != nil || st.State != service.StateDone {
					return false
				}
			}
			return true
		}
	}

	// ── Phase 1: load under transport noise, converge to factor 2. ──
	var phase1 []uint64
	var phase1IDs [3][]string
	for seed := uint64(101); seed <= 112; seed++ {
		i := int(seed) % 3
		st := submitTo(nodes[i], seed)
		phase1 = append(phase1, seed)
		phase1IDs[i] = append(phase1IDs[i], st.ID)
	}
	for i, n := range nodes {
		soakWait(t, "phase-1 settlement on "+n.name, 30*time.Second, allDoneOn(n, phase1IDs[i]))
	}
	soakWait(t, "phase-1 replica convergence", 30*time.Second, converged(phase1))
	for _, seed := range phase1 {
		if got := ledger.count(seed); got != 1 {
			t.Fatalf("seed %d ran %d times in phase 1, want 1", seed, got)
		}
	}
	var pushes int64
	for _, n := range nodes {
		pushes += n.s.Metrics().ReplicaPushes.Load()
	}
	if pushes == 0 {
		t.Fatal("no replica pushes recorded during phase 1")
	}

	// ── Phase 2a: kill C mid-replication. ──
	// A fresh batch settles on C and C dies immediately: its last pushes
	// may still be in flight. Every *converged* key must stay servable
	// by the survivors; the fresh batch re-replicates after restart.
	var phase2 []uint64
	var phase2IDs []string
	for seed := uint64(201); seed <= 204; seed++ {
		phase2 = append(phase2, seed)
		phase2IDs = append(phase2IDs, submitTo(c, seed).ID)
	}
	soakWait(t, "phase-2 settlement on C", 30*time.Second, allDoneOn(c, phase2IDs))
	c.kill()
	for _, seed := range phase1 {
		if !served(a.addr, keys[seed]) && !served(b.addr, keys[seed]) {
			t.Fatalf("converged key for seed %d lost to the survivors while C is down", seed)
		}
	}
	// Survivors open their breaker toward the corpse (repair probes keep
	// hitting the 503), and close it again after the restart below.
	soakWait(t, "breaker on A toward dead C to open", 20*time.Second, func() bool {
		return breakerStateOn(t, a.addr, cluster.NormalizeAddr(c.addr)) == cluster.StateOpen
	})
	c.boot(peers, service.Config{Workers: 2}, noise(120))
	soakWait(t, "phase-2 replica convergence after C restart", 30*time.Second, converged(append(append([]uint64(nil), phase1...), phase2...)))
	soakWait(t, "breaker on A toward revived C to close", 20*time.Second, func() bool {
		return breakerStateOn(t, a.addr, cluster.NormalizeAddr(c.addr)) == cluster.StateClosed
	})

	// ── Phase 2b: C loses its disk. ──
	// Kill C again, wipe its store, restart empty: anti-entropy repair
	// on the holders must re-push every key whose replica set includes
	// C until C serves them all again.
	c.kill()
	if err := os.RemoveAll(c.storeDir); err != nil {
		t.Fatal(err)
	}
	c.boot(peers, service.Config{Workers: 2}, noise(121))
	cAddr := cluster.NormalizeAddr(c.addr)
	var cOwned []uint64
	for _, seed := range append(append([]uint64(nil), phase1...), phase2...) {
		for _, member := range c.cl.ReplicaSet(keys[seed]) {
			if member == cAddr {
				cOwned = append(cOwned, seed)
			}
		}
	}
	if len(cOwned) == 0 {
		t.Fatal("replica placement gave C no keys — soak cannot exercise repair")
	}
	soakWait(t, "repair to re-populate C's wiped store", 30*time.Second, func() bool {
		for _, seed := range cOwned {
			if !served(c.addr, keys[seed]) {
				return false
			}
		}
		return true
	})

	// ── Phase 3: the thief dies mid-steal. ──
	// A's single worker is pinned by a gated blocker, B steals one of
	// the two queued jobs and journals+commits it, then B dies with the
	// stolen job un-run. B's restart must replay its WAL and run the job
	// exactly once; A settles it through the stolen-job follower.
	a.kill()
	a.boot(peers, service.Config{Workers: 1}, calm(130), 301)
	b.kill()
	b.boot(peers, service.Config{Workers: 2, StealInterval: 40 * time.Millisecond}, calm(131), 302, 303)
	blocker := submitTo(a, 301)
	soakWait(t, "phase-3 blocker to occupy A's worker", 20*time.Second, func() bool {
		st, err := a.s.Get(blocker.ID)
		return err == nil && st.State == service.StateRunning
	})
	ids3 := []string{blocker.ID, submitTo(a, 302).ID, submitTo(a, 303).ID}
	soakWait(t, "B to steal and commit one job", 20*time.Second, func() bool {
		m := b.s.Metrics()
		return m.JobsStolen.Load() >= 1 && m.StealCommits.Load() >= 1
	})
	b.kill()
	b.boot(peers, service.Config{Workers: 2}, calm(132))
	if got := b.s.Metrics().QueueReplayed.Load(); got < 1 {
		t.Fatalf("B replayed %d jobs after dying mid-steal, want the stolen job back", got)
	}
	a.openGate()
	soakWait(t, "phase-3 jobs to settle on A", 30*time.Second, allDoneOn(a, ids3))
	for seed := uint64(301); seed <= 303; seed++ {
		if got := ledger.count(seed); got != 1 {
			t.Fatalf("seed %d ran %d times across the thief crash, want exactly 1", seed, got)
		}
	}

	// ── Phase 4: the victim dies mid-steal. ──
	// Same saturation, but A dies after B journals and commits the
	// steal: the commit tombstoned the job in A's WAL, so A's restart
	// replays only the blocker and the un-stolen job, while B alone
	// runs the stolen one.
	a.kill()
	a.boot(peers, service.Config{Workers: 1}, calm(140), 401)
	b.kill()
	b.boot(peers, service.Config{Workers: 2, StealInterval: 40 * time.Millisecond}, calm(141), 402, 403)
	blocker4 := submitTo(a, 401)
	soakWait(t, "phase-4 blocker to occupy A's worker", 20*time.Second, func() bool {
		st, err := a.s.Get(blocker4.ID)
		return err == nil && st.State == service.StateRunning
	})
	submitTo(a, 402)
	submitTo(a, 403)
	soakWait(t, "B to steal and commit one phase-4 job", 20*time.Second, func() bool {
		m := b.s.Metrics()
		return m.JobsStolen.Load() >= 1 && m.StealCommits.Load() >= 1
	})
	a.kill()
	b.openGate()
	a.boot(peers, service.Config{Workers: 2}, calm(142))
	if got := a.s.Metrics().QueueReplayed.Load(); got != 2 {
		t.Fatalf("A replayed %d jobs after dying as steal victim, want 2 (blocker + un-stolen; the committed steal is tombstoned)", got)
	}
	soakWait(t, "phase-4 replayed jobs to settle on A", 30*time.Second, func() bool {
		jobs := a.s.Jobs()
		if len(jobs) != 2 {
			return false
		}
		for _, st := range jobs {
			if st.State != service.StateDone {
				return false
			}
		}
		return true
	})
	soakWait(t, "phase-4 stolen job to settle on B", 30*time.Second, func() bool {
		for seed := uint64(401); seed <= 403; seed++ {
			if holders(keys[seed]) < 1 {
				return false
			}
		}
		return true
	})
	for seed := uint64(401); seed <= 403; seed++ {
		if got := ledger.count(seed); got != 1 {
			t.Fatalf("seed %d ran %d times across the victim crash, want exactly 1", seed, got)
		}
	}

	// ── Final convergence: every key ever settled is on ≥ 2 nodes and
	// every breaker everywhere has recovered to closed. ──
	var all []uint64
	for seed := range keys {
		all = append(all, seed)
	}
	soakWait(t, "full-cluster replica convergence", 45*time.Second, converged(all))
	soakWait(t, "all breakers to recover", 20*time.Second, func() bool {
		for _, n := range nodes {
			for _, p := range nodes {
				if p == n {
					continue
				}
				if breakerStateOn(t, n.addr, cluster.NormalizeAddr(p.addr)) != cluster.StateClosed {
					return false
				}
			}
		}
		return true
	})
	for seed, count := range map[uint64]int(func() map[uint64]int {
		ledger.mu.Lock()
		defer ledger.mu.Unlock()
		out := make(map[uint64]int, len(ledger.runs))
		for s, n := range ledger.runs {
			out[s] = n
		}
		return out
	}()) {
		if count != 1 {
			t.Fatalf("seed %d ran %d times over the whole soak, want exactly 1", seed, count)
		}
		if _, ok := keys[seed]; !ok {
			t.Fatalf("engine ran unsubmitted seed %d", seed)
		}
	}
}

// repairRunsOn reads node addr's admin count of completed anti-entropy
// passes.
func repairRunsOn(t *testing.T, addr string) int64 {
	t.Helper()
	resp, err := http.Get(addr + "/v1/admin/cluster")
	if err != nil {
		t.Fatalf("admin on %s: %v", addr, err)
	}
	defer resp.Body.Close()
	var adm struct {
		Replication struct {
			RepairRuns int64 `json:"repair_runs"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&adm); err != nil {
		t.Fatalf("admin on %s: %v", addr, err)
	}
	return adm.Replication.RepairRuns
}

// TestSoakClusterHintedHandoff proves hinted handoff alone — anti-
// entropy repair disabled on every node — heals a replica severed for
// an entire load phase:
//
//   - a 3-node, factor-3 cluster partitions node C away from A and B,
//     then A and B each settle 25 keys: every replica push toward C
//     bounces and must queue exactly one durable hint per key;
//   - A is SIGKILL'd and rebooted mid-outage: its hint log must replay
//     from disk with nothing lost;
//   - the partition heals: the failure detector's next successful ping
//     drains both hint queues until C serves all 50 bodies, having run
//     zero engines and zero repair passes anywhere;
//   - delivery is idempotent at the wire: re-delivering a body C
//     already holds changes nothing and still runs no engine.
func TestSoakClusterHintedHandoff(t *testing.T) {
	ledger := &clusterRunLedger{}
	nodes := make([]*soakClusterNode, 3)
	peers := make([]string, 3)
	for i, name := range []string{"A", "B", "C"} {
		sh := &chaosSwap{}
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		base := t.TempDir()
		nodes[i] = &soakClusterNode{
			t:        t,
			name:     name,
			sh:       sh,
			addr:     srv.URL,
			storeDir: base + "/store",
			queueDir: base + "/queue",
			hintDir:  base + "/hints",
			factor:   3,
			ledger:   ledger,
		}
		peers[i] = srv.URL
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	cfg := func() service.Config {
		return service.Config{
			Workers:        2,
			StealInterval:  -1,
			RepairInterval: -1, // hints must do ALL the healing
			ProbeInterval:  120 * time.Millisecond,
			ProbeMisses:    3,
		}
	}
	for _, n := range nodes {
		n.boot(peers, cfg(), NetPlan{})
	}
	cHost := strings.TrimPrefix(c.addr, "http://")
	cNorm := cluster.NormalizeAddr(c.addr)
	// Partition C away from A and B. The test harness itself still
	// reaches C directly — C is alive and answering, its peers just
	// cannot see it, which is exactly the failure hints exist for.
	a.net.Sever(cHost)
	b.net.Sever(cHost)

	// ── Load under the partition: 50 keys split across A and B. ──
	keys := make(map[uint64]string)
	ids := map[*soakClusterNode][]string{}
	for seed := uint64(501); seed <= 550; seed++ {
		n := a
		if seed%2 == 0 {
			n = b
		}
		st, err := n.s.Submit(soakSpec(seed))
		if err != nil {
			t.Fatalf("submit seed %d to %s: %v", seed, n.name, err)
		}
		keys[seed] = st.Key
		ids[n] = append(ids[n], st.ID)
	}
	for _, n := range []*soakClusterNode{a, b} {
		nn := n
		soakWait(t, "load settlement on "+n.name, 60*time.Second, func() bool {
			for _, id := range ids[nn] {
				st, err := nn.s.Get(id)
				if err != nil || st.State != service.StateDone {
					return false
				}
			}
			return true
		})
	}
	// Every push toward severed C bounces into a hint: one per key,
	// deduplicated, on the node that computed it.
	soakWait(t, "hints to accumulate on A and B", 30*time.Second, func() bool {
		return a.hl.PendingFor(cNorm) == 25 && b.hl.PendingFor(cNorm) == 25
	})
	for _, n := range nodes {
		if got := repairRunsOn(t, n.addr); got != 0 {
			t.Fatalf("%s completed %d repair passes with repair disabled", n.name, got)
		}
	}

	// ── SIGKILL A mid-outage: the hint log must survive and replay. ──
	a.kill()
	a.boot(peers, cfg(), NetPlan{})
	a.net.Sever(cHost) // the outage outlives the crash
	if got := a.hl.Stats().Replayed; got != 25 {
		t.Fatalf("A replayed %d hints after SIGKILL, want 25", got)
	}
	if got := a.hl.PendingFor(cNorm); got != 25 {
		t.Fatalf("A holds %d pending hints after replay, want 25", got)
	}

	// ── Heal the partition: hints must deliver everything. ──
	a.net.Heal(cHost)
	b.net.Heal(cHost)
	soakWait(t, "C to serve all 50 hinted keys", 60*time.Second, func() bool {
		for _, key := range keys {
			if !served(c.addr, key) {
				return false
			}
		}
		return true
	})
	soakWait(t, "hint queues to drain", 30*time.Second, func() bool {
		return a.hl.PendingFor(cNorm) == 0 && b.hl.PendingFor(cNorm) == 0
	})
	if got := c.s.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("C ran %d engines; hint delivery must not compute", got)
	}
	for _, n := range nodes {
		if got := repairRunsOn(t, n.addr); got != 0 {
			t.Fatalf("%s completed %d repair passes; hints must heal alone", n.name, got)
		}
	}
	if got := a.hl.Stats().Delivered; got != 25 {
		t.Fatalf("A delivered %d hints, want 25", got)
	}
	for seed := uint64(501); seed <= 550; seed++ {
		if got := ledger.count(seed); got != 1 {
			t.Fatalf("seed %d ran %d times, want exactly 1", seed, got)
		}
	}

	// ── Idempotent delivery at the wire: re-deliver a body C already
	// holds (a flapping peer would see exactly this). ──
	key := keys[501]
	get := func() string {
		resp, err := http.Get(c.addr + cluster.ResultsPathPrefix + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	before := get()
	req, _ := http.NewRequest(http.MethodPut, c.addr+cluster.ResultsPathPrefix+key, strings.NewReader(before))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("duplicate delivery answered %d", resp.StatusCode)
	}
	if after := get(); after != before {
		t.Fatalf("duplicate delivery changed stored bytes:\nbefore: %s\nafter:  %s", before, after)
	}
	if got := c.s.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("duplicate delivery ran %d engines on C", got)
	}
}
