package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"coordattack/internal/mc"
	"coordattack/internal/service"
)

// EnginePlan schedules engine-level faults, injected through
// service.Config.WrapEngine. Counting runs (rather than drawing
// probabilities) keeps the schedule exact under a concurrent worker
// pool: the Nth engine run faults no matter which worker picks it up.
type EnginePlan struct {
	// StallEvery makes every Nth engine run stall for StallFor before
	// doing its work, deliberately ignoring the job context — the wedged
	// engine the stuck-job watchdog exists for. 0 disables stalls.
	StallEvery int
	// StallFor is the stall duration; 0 with StallEvery > 0 means 50ms.
	StallFor time.Duration
	// PanicEvery makes every Nth engine run panic, exercising the
	// scheduler's panic isolation. 0 disables panics.
	PanicEvery int
}

// Engine wraps engine runs with an EnginePlan's fault schedule.
type Engine struct {
	plan EnginePlan

	runs   atomic.Int64
	stalls atomic.Int64
	panics atomic.Int64
}

// EngineStats counts the faults an Engine actually injected, plus the
// total runs it saw.
type EngineStats struct {
	Runs   int64
	Stalls int64
	Panics int64
}

// NewEngine returns an Engine for plan.
func NewEngine(plan EnginePlan) *Engine {
	if plan.StallFor == 0 {
		plan.StallFor = 50 * time.Millisecond
	}
	return &Engine{plan: plan}
}

// Stats snapshots the injected-fault counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{Runs: e.runs.Load(), Stalls: e.stalls.Load(), Panics: e.panics.Load()}
}

// Wrap is the service.Config.WrapEngine hook: it schedules this run's
// fault (panic, stall, or nothing) and then delegates to the real
// engine. Injected panics are recovered by the scheduler's ordinary
// panic isolation; injected stalls ignore ctx, so a stalled run past
// its deadline is indistinguishable from a wedged engine — which is the
// point.
func (e *Engine) Wrap(name string, next service.RunFunc) service.RunFunc {
	return func(ctx context.Context, spec service.JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
		n := e.runs.Add(1)
		if e.plan.PanicEvery > 0 && n%int64(e.plan.PanicEvery) == 0 {
			e.panics.Add(1)
			panic(fmt.Sprintf("chaos: injected panic on engine run %d", n))
		}
		if e.plan.StallEvery > 0 && n%int64(e.plan.StallEvery) == 0 {
			e.stalls.Add(1)
			time.Sleep(e.plan.StallFor)
		}
		return next(ctx, spec, workers, progress)
	}
}
