package chaos

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coordattack/internal/store"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{PWriteErr: -0.1},
		{PWriteErr: 1.1},
		{PWriteErr: math.NaN()},
		{PSlow: math.NaN()},
		{PTorn: 2},
		{SlowFor: -time.Second},
	}
	for _, p := range bad {
		if _, err := NewFS(store.DiskFS(), p); err == nil {
			t.Errorf("plan %+v accepted, want error", p)
		}
	}
	if _, err := NewFS(store.DiskFS(), Plan{}); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

// faultPattern runs a fixed sequence of operations against a fresh FS
// and records which ones drew an injected error.
func faultPattern(t *testing.T, seed uint64) []bool {
	t.Helper()
	dir := t.TempDir()
	fs, err := NewFS(store.DiskFS(), Plan{Seed: seed, PWriteErr: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 40; i++ {
		err := fs.MkdirAll(filepath.Join(dir, "d"), 0o755)
		pattern = append(pattern, err != nil)
	}
	return pattern
}

func TestScheduleIsSeedReproducible(t *testing.T) {
	a, b := faultPattern(t, 42), faultPattern(t, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: fault %v vs %v for equal seeds", i, a[i], b[i])
		}
	}
	c := faultPattern(t, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 injected identical schedules (suspicious)")
	}
	any := false
	for _, hit := range a {
		any = any || hit
	}
	if !any {
		t.Error("PWriteErr=0.4 over 40 ops injected nothing")
	}
}

func TestBreakFailsOnlyMutatingOps(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFS(store.DiskFS(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "f")
	if err := os.WriteFile(name, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	fs.Break()
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err == nil {
		t.Error("MkdirAll succeeded during outage")
	}
	if _, err := fs.CreateTemp(dir, "tmp-*"); err == nil {
		t.Error("CreateTemp succeeded during outage")
	}
	if _, err := fs.ReadFile(name); err != nil {
		t.Errorf("ReadFile failed during outage: %v", err)
	}
	if _, err := fs.ReadDir(dir); err != nil {
		t.Errorf("ReadDir failed during outage: %v", err)
	}

	fs.Heal()
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Errorf("MkdirAll failed after heal: %v", err)
	}
	if got := fs.Stats().Errors; got < 2 {
		t.Errorf("injected errors = %d, want >= 2", got)
	}
}

// tornKey returns a well-formed store key for the torn-write test.
func tornKey() string {
	return "00000000000000000000000000000000000000000000000000000000000000aa"
}

func TestTornWriteIsQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFS(store.DiskFS(), Plan{Seed: 3, PTorn: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// The torn write reports success: the store believes the entry is
	// durable and indexes it.
	if err := st.Put(tornKey(), []byte(`{"torn": true}`)); err != nil {
		t.Fatalf("torn Put returned error: %v", err)
	}
	if st.Degraded() {
		t.Fatal("torn write degraded the store (it must look like success)")
	}
	if fs.Stats().TornWrites == 0 {
		t.Fatal("no torn write injected at PTorn=1")
	}
	// The read-time checksum catches the truncation: miss + quarantine,
	// never a corrupt body served.
	if body, ok := st.Get(tornKey()); ok {
		t.Fatalf("torn entry served: %q", body)
	}
	if got := st.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	if q := st.Quarantine(); len(q) != 1 || q[0].Name != tornKey() {
		t.Errorf("quarantine listing = %+v, want the torn key", q)
	}
}
