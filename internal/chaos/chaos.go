// Package chaos is the deterministic fault-injection harness for the
// coordd operational stack: it wraps the store's filesystem (injected
// EIO/ENOSPC, slow IO, torn writes) and the service's engines (stalls,
// panics) with seed-reproducible fault schedules, in the style of
// internal/fault's adversary plans — the paper's strong adversary, aimed
// at the daemon's own channels instead of the protocol's.
//
// The FS wrapper supports two failure modes that compose:
//
//   - a Plan: per-operation probabilistic faults drawn from a
//     deterministic rng stream, so a given (seed, op-index) always
//     injects the same fault — re-running a sequential workload replays
//     its exact fault schedule;
//   - a manual outage (Break/Heal): every mutating operation fails with
//     EIO until healed, modeling a full disk or a dead mount, which is
//     what drives the store's degrade → probe → recover cycle in the
//     soak test.
//
// Reads are never broken by the manual outage — a read-only filesystem
// keeps serving what it has, exactly like the degraded store — so soak
// invariants over cache consistency stay exact.
package chaos

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"syscall"
	"time"

	"coordattack/internal/rng"
	"coordattack/internal/store"
)

// planSalt derives the chaos stream from the seed, mirroring
// fault.Sample's seed-mixing discipline.
const planSalt = 0xc4a05

// Plan is a deterministic per-operation fault schedule for a chaos FS.
// The zero value injects nothing; every probability must be in [0, 1].
type Plan struct {
	// Seed roots the fault schedule; equal seeds replay equal faults
	// for the same operation sequence.
	Seed uint64
	// PWriteErr is the per-mutating-operation probability of an
	// injected write error (EIO or ENOSPC, drawn per fault).
	PWriteErr float64
	// PSlow is the per-operation probability of injected latency.
	PSlow float64
	// SlowFor is the injected latency; 0 with PSlow > 0 means 1ms.
	SlowFor time.Duration
	// PTorn is the per-File.Write probability that only a prefix of the
	// payload (torn at a drawn byte offset) reaches the file while the
	// write still reports success — a crash mid-write made durable.
	PTorn float64
}

func (p Plan) validate() error {
	// NaN fails every comparison, so check validity positively.
	for _, v := range []struct {
		name string
		val  float64
	}{{"PWriteErr", p.PWriteErr}, {"PSlow", p.PSlow}, {"PTorn", p.PTorn}} {
		if !(v.val >= 0 && v.val <= 1) || math.IsNaN(v.val) {
			return fmt.Errorf("chaos: %s = %v out of [0,1]", v.name, v.val)
		}
	}
	if p.SlowFor < 0 {
		return fmt.Errorf("chaos: SlowFor = %v negative", p.SlowFor)
	}
	return nil
}

// FSStats counts the faults an FS actually injected.
type FSStats struct {
	Errors     int64 // injected EIO/ENOSPC (plan and outage)
	TornWrites int64
	SlowOps    int64
}

// FS wraps a store.FS with the fault schedule. It is safe for
// concurrent use; operation indices are assigned in execution order, so
// schedules are exactly reproducible for sequential workloads and
// reproducible per interleaving for concurrent ones.
type FS struct {
	inner  store.FS
	plan   Plan
	stream rng.Stream
	op     atomic.Uint64
	broken atomic.Bool

	errors     atomic.Int64
	tornWrites atomic.Int64
	slowOps    atomic.Int64
}

// NewFS wraps inner with plan's fault schedule.
func NewFS(inner store.FS, plan Plan) (*FS, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.SlowFor == 0 {
		plan.SlowFor = time.Millisecond
	}
	return &FS{
		inner:  inner,
		plan:   plan,
		stream: rng.NewStream(rng.Mix64(plan.Seed ^ planSalt)),
	}, nil
}

// Break starts a manual outage: every mutating operation fails with EIO
// until Heal. Reads keep working.
func (f *FS) Break() { f.broken.Store(true) }

// Heal ends the manual outage.
func (f *FS) Heal() { f.broken.Store(false) }

// Broken reports whether a manual outage is in effect.
func (f *FS) Broken() bool { return f.broken.Load() }

// Stats snapshots the injected-fault counters.
func (f *FS) Stats() FSStats {
	return FSStats{
		Errors:     f.errors.Load(),
		TornWrites: f.tornWrites.Load(),
		SlowOps:    f.slowOps.Load(),
	}
}

// tape returns the deterministic draw source for the next operation.
func (f *FS) tape() *rng.Tape {
	return f.stream.Tape(f.op.Add(1), 0)
}

// enter runs the common per-operation schedule: maybe inject latency,
// then — for mutating ops — maybe inject an error. A non-nil error is
// what the operation must return.
func (f *FS) enter(op, path string, mutating bool) error {
	t := f.tape()
	if slow, _ := t.Bernoulli(f.plan.PSlow); slow {
		f.slowOps.Add(1)
		time.Sleep(f.plan.SlowFor)
	}
	if !mutating {
		return nil
	}
	if f.broken.Load() {
		f.errors.Add(1)
		return &os.PathError{Op: op, Path: path, Err: syscall.EIO}
	}
	if hit, _ := t.Bernoulli(f.plan.PWriteErr); hit {
		f.errors.Add(1)
		errno := syscall.Errno(syscall.EIO)
		if v, _ := t.UintN(2); v == 1 {
			errno = syscall.ENOSPC
		}
		return &os.PathError{Op: op, Path: path, Err: errno}
	}
	return nil
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.enter("mkdir", path, true); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.enter("readdir", name, false); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.enter("read", name, false); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.enter("rename", oldpath, true); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.enter("remove", name, true); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) Chtimes(name string, atime, mtime time.Time) error {
	if err := f.enter("chtimes", name, true); err != nil {
		return err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.enter("create", dir, true); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: f, inner: inner}, nil
}

func (f *FS) SyncDir(name string) error {
	if err := f.enter("syncdir", name, true); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// chaosFile threads the schedule through the open-file write protocol.
type chaosFile struct {
	fs    *FS
	inner store.File
}

func (c *chaosFile) Name() string { return c.inner.Name() }

// Write injects both error faults and torn writes. A torn write
// persists only a prefix of p yet reports full success — the caller's
// fsync+rename then makes the truncated entry durable, which is exactly
// the corruption the store's read-time checksum must catch.
func (c *chaosFile) Write(p []byte) (int, error) {
	if err := c.fs.enter("write", c.inner.Name(), true); err != nil {
		return 0, err
	}
	if len(p) > 0 {
		t := c.fs.tape()
		if torn, _ := t.Bernoulli(c.fs.plan.PTorn); torn {
			off, _ := t.UintN(uint64(len(p)))
			c.fs.tornWrites.Add(1)
			if _, err := c.inner.Write(p[:off]); err != nil {
				return 0, err
			}
			return len(p), nil
		}
	}
	return c.inner.Write(p)
}

func (c *chaosFile) Sync() error {
	if err := c.fs.enter("sync", c.inner.Name(), true); err != nil {
		return err
	}
	return c.inner.Sync()
}

func (c *chaosFile) Close() error {
	// Close is never failed by the schedule: an injected close error
	// would leak the real file descriptor under the wrapper.
	return c.inner.Close()
}
