package rng

// This file is the batched-tape layer behind the zero-alloc trial
// engines. A Stream maps (trial, proc) labels to independent tapes; the
// reference path materializes a fresh Tape per label, which costs one
// allocation per process per trial. The fast path instead:
//
//   - precomputes the tape *seeds* for one page of consecutive trials in
//     a single pass (SeedPage) — the per-proc and per-trial Mix64 halves
//     of the seed formula are each computed once per page row/column
//     instead of once per (trial, proc) pair, and
//   - reuses one Tape value per process (Bank), reseeding it in place
//     from the page at the start of every trial.
//
// The seeds — and therefore every random bit drawn — are identical to
// what Stream.Tape would hand out; page_test.go pins that bit-for-bit.
// Batching changes only where the allocations happen: one page + one
// bank per worker, amortized over every trial the worker runs.

// tapeSeed is the (trial, proc) → seed formula shared by Stream.Tape and
// SeedPage. Any change here is a break in reproducibility and will trip
// the differential suite.
func (s Stream) tapeSeed(trial, proc uint64) uint64 {
	return Mix64(s.seed ^ Mix64(trial+0x1234)*0x9e3779b97f4a7c15 ^ Mix64(proc+0xabcd))
}

// Reseed points an existing tape at the (trial, proc) stream of s — the
// allocation-free equivalent of t = s.Tape(trial, proc).
func (s Stream) Reseed(t *Tape, trial, proc uint64) {
	t.Reseed(s.tapeSeed(trial, proc))
}

// SeedPage caches the per-(trial, proc) tape seeds for a contiguous
// block of trials, generated in one pass. Fill one page, slice many
// trials from it: a Monte-Carlo worker fills the page covering its next
// block and reseeds its tape bank row by row. The zero value is an empty
// page; Ensure fills it on demand. A SeedPage is not safe for concurrent
// use — each worker owns one.
type SeedPage struct {
	stream Stream
	lo, hi uint64 // covered trial range [lo, hi)
	procs  int    // seeds cover procs 0..procs per trial
	seeds  []uint64
	filled bool
}

// DefaultPageTrials is the page length Ensure uses: large enough to
// amortize the per-page fill, small enough that a worker striding
// through a shared trial range wastes little.
const DefaultPageTrials = 256

// Fill populates the page with the seeds for trials [lo, hi) × procs
// 0..procs of stream s, reusing the backing array when it is large
// enough. Requires hi > lo and procs ≥ 0.
func (p *SeedPage) Fill(s Stream, lo, hi uint64, procs int) {
	if hi <= lo || procs < 0 {
		p.filled = false
		return
	}
	width := procs + 1
	need := int(hi-lo) * width
	if cap(p.seeds) < need {
		p.seeds = make([]uint64, need)
	}
	p.seeds = p.seeds[:need]
	p.stream, p.lo, p.hi, p.procs, p.filled = s, lo, hi, procs, true
	// One Mix64 per column, one per row, one per cell — versus three per
	// cell on the unbatched path.
	for proc := 0; proc <= procs; proc++ {
		pm := Mix64(uint64(proc) + 0xabcd)
		row := p.seeds[proc:]
		for trial := lo; trial < hi; trial++ {
			tm := Mix64(trial+0x1234) * 0x9e3779b97f4a7c15
			row[int(trial-lo)*width] = Mix64(s.seed ^ tm ^ pm)
		}
	}
}

// Ensure makes the page cover trial for stream s, refilling with a
// DefaultPageTrials-long block starting at trial when it does not.
func (p *SeedPage) Ensure(s Stream, trial uint64, procs int) {
	if p.filled && p.stream == s && p.procs >= procs && trial >= p.lo && trial < p.hi {
		return
	}
	p.Fill(s, trial, trial+DefaultPageTrials, procs)
}

// Seed returns the cached seed for (trial, proc). The caller must have
// Ensured coverage; out-of-range lookups fall back to computing the seed
// directly so the answer is always right.
func (p *SeedPage) Seed(trial, proc uint64) uint64 {
	if !p.filled || trial < p.lo || trial >= p.hi || int(proc) > p.procs {
		return p.stream.tapeSeed(trial, proc)
	}
	return p.seeds[int(trial-p.lo)*(p.procs+1)+int(proc)]
}

// Bank is a fixed family of per-process tapes reseeded in place once per
// trial — the arena backing α_1..α_m in the fast engines. Index 0 is the
// run-sampler tape slot by mc convention. A Bank is not safe for
// concurrent use; each worker owns one.
type Bank struct {
	tapes []Tape
}

// NewBank returns a bank with tape slots 0..procs.
func NewBank(procs int) *Bank {
	return &Bank{tapes: make([]Tape, procs+1)}
}

// Procs reports the highest tape slot.
func (b *Bank) Procs() int { return len(b.tapes) - 1 }

// Grow ensures the bank has slots 0..procs.
func (b *Bank) Grow(procs int) {
	if procs+1 > len(b.tapes) {
		next := make([]Tape, procs+1)
		copy(next, b.tapes)
		b.tapes = next
	}
}

// Tape returns the tape in slot proc. The pointer stays valid until the
// next Grow.
func (b *Bank) Tape(proc int) *Tape { return &b.tapes[proc] }

// ReseedFrom reseeds every slot from the page's row for trial, after
// which slot i is bit-identical to stream.Tape(trial, i).
func (b *Bank) ReseedFrom(page *SeedPage, trial uint64) {
	for i := range b.tapes {
		b.tapes[i].Reseed(page.Seed(trial, uint64(i)))
	}
}
