// Package rng is the deterministic randomness substrate for the
// coordinated-attack model.
//
// The model of Varghese & Lynch (PODC 1992, §2) gives each process i a
// private sequence α_i of J uniform random bits. This package implements
// that abstraction from scratch on top of two classic generators:
//
//   - SplitMix64 — used for seeding and stream derivation, and
//   - xoshiro256** — the bulk generator behind every tape.
//
// Nothing in this repository draws randomness from anywhere else: no
// time-based seeds, no global generators. Every experiment is reproducible
// bit-for-bit from its explicit seed.
package rng

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrTapeExhausted is returned by bounded tapes when a protocol asks for
// more random bits than its declared budget J allows.
var ErrTapeExhausted = errors.New("rng: random tape exhausted")

// SplitMix64 is a tiny, fast 64-bit generator with full period 2^64.
// It is used to expand seeds and to derive independent streams; it is the
// standard seeding companion for the xoshiro family.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit output and advances the generator.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 finalization round. It is a
// stateless convenience used for deriving stream seeds from labels.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna: 256 bits
// of state, period 2^256-1, and excellent statistical quality for
// simulation workloads. The zero value is invalid; construct with
// NewXoshiro256.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed via
// SplitMix64, per the reference initialization procedure.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// Seed reinitializes the generator in place from seed, exactly as
// NewXoshiro256 would: the same seed always yields the same stream. It
// exists so hot loops can recycle one generator across trials without
// allocating.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be a fixed point; SplitMix64 cannot emit four
	// consecutive zeros, but guard anyway so the invariant is local.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// Jump advances the generator by 2^128 steps — equivalent to 2^128 calls
// to Uint64 — partitioning the sequence into non-overlapping streams.
// This is the reference long-range jump of the xoshiro256 family; the
// Stream helpers use hashed seeds instead, but Jump is provided for
// workloads that want provably disjoint subsequences.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Uint64 returns the next 64 random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Tape is one process's private random input α_i: a stream of uniform bits
// with an optional budget J. It mirrors the paper's model, where J bounds
// the total number of random bits any general may consume; a Tape with
// Budget 0 is unbounded.
//
// A Tape is not safe for concurrent use; each process owns its own tape,
// exactly as each general owns its own α_i.
type Tape struct {
	src      Xoshiro256
	budget   int // J; 0 means unlimited
	consumed int // bits drawn so far

	word     uint64 // buffered bits
	wordLeft int    // bits remaining in word

	lineage uint64 // immutable seed identity, used by Fork
}

// NewTape returns an unbounded tape seeded with seed.
func NewTape(seed uint64) *Tape {
	t := &Tape{lineage: seed}
	t.src.Seed(seed)
	return t
}

// NewBoundedTape returns a tape that permits at most budget bits (the
// paper's J). budget must be positive.
func NewBoundedTape(seed uint64, budget int) (*Tape, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("rng: budget must be positive, got %d", budget)
	}
	t := &Tape{budget: budget, lineage: seed}
	t.src.Seed(seed)
	return t, nil
}

// Reseed reinitializes the tape in place to the exact state NewTape(seed)
// would return: same stream, same (unbounded) budget, zero bits consumed.
// It allocates nothing, which is what lets the fast trial engines reuse
// one tape per process across millions of trials.
func (t *Tape) Reseed(seed uint64) {
	t.src.Seed(seed)
	t.budget = 0
	t.consumed = 0
	t.word = 0
	t.wordLeft = 0
	t.lineage = seed
}

// Consumed reports the number of random bits drawn from the tape so far.
func (t *Tape) Consumed() int { return t.consumed }

// Budget reports the bit budget J, or 0 if the tape is unbounded.
func (t *Tape) Budget() int { return t.budget }

// Remaining reports how many bits may still be drawn, or -1 if unbounded.
func (t *Tape) Remaining() int {
	if t.budget == 0 {
		return -1
	}
	return t.budget - t.consumed
}

func (t *Tape) charge(n int) error {
	if t.budget != 0 && t.consumed+n > t.budget {
		return fmt.Errorf("%w: need %d bits, %d of %d used",
			ErrTapeExhausted, n, t.consumed, t.budget)
	}
	t.consumed += n
	return nil
}

// Bit draws one uniform bit.
func (t *Tape) Bit() (byte, error) {
	if err := t.charge(1); err != nil {
		return 0, err
	}
	if t.wordLeft == 0 {
		t.word = t.src.Uint64()
		t.wordLeft = 64
	}
	b := byte(t.word & 1)
	t.word >>= 1
	t.wordLeft--
	return b, nil
}

// Uint64 draws 64 uniform bits as one word.
func (t *Tape) Uint64() (uint64, error) {
	if err := t.charge(64); err != nil {
		return 0, err
	}
	return t.src.Uint64(), nil
}

// UintN draws a uniform integer in [0, n). n must be positive. Rejection
// sampling removes modulo bias entirely.
func (t *Tape) UintN(n uint64) (uint64, error) {
	if n == 0 {
		return 0, errors.New("rng: UintN requires n > 0")
	}
	if n&(n-1) == 0 { // power of two: mask, no rejection
		v, err := t.Uint64()
		if err != nil {
			return 0, err
		}
		return v & (n - 1), nil
	}
	// Lemire-style threshold rejection on the top bits.
	thresh := -n % n
	for {
		v, err := t.Uint64()
		if err != nil {
			return 0, err
		}
		hi, lo := bits.Mul64(v, n)
		if lo >= thresh {
			return hi, nil
		}
	}
}

// IntRange draws a uniform integer in [lo, hi] inclusive. Requires lo ≤ hi.
func (t *Tape) IntRange(lo, hi int) (int, error) {
	if lo > hi {
		return 0, fmt.Errorf("rng: empty range [%d, %d]", lo, hi)
	}
	v, err := t.UintN(uint64(hi-lo) + 1)
	if err != nil {
		return 0, err
	}
	return lo + int(v), nil
}

// Float64Open01 draws a uniform value in the half-open interval (0, 1]:
// (k+1)/2^53 for uniform k in [0, 2^53). This is the quantization used for
// rfire; the paper's uniform real on (0, 1/ε] is approximated to within
// 2^-53, far below every probability reported by any experiment.
func (t *Tape) Float64Open01() (float64, error) {
	v, err := t.Uint64()
	if err != nil {
		return 0, err
	}
	k := v >> 11 // top 53 bits
	return float64(k+1) / (1 << 53), nil
}

// Bernoulli draws true with probability p. Requires 0 ≤ p ≤ 1.
func (t *Tape) Bernoulli(p float64) (bool, error) {
	if p < 0 || p > 1 {
		return false, fmt.Errorf("rng: probability %v out of [0,1]", p)
	}
	if p == 0 {
		return false, nil
	}
	v, err := t.Float64Open01()
	if err != nil {
		return false, err
	}
	return v <= p, nil
}

// Fork derives an independent tape from this tape's immutable seed lineage
// and a label. Forking neither consumes bits from the parent nor depends on
// how many bits the parent has already consumed, so forked tapes are stable
// identities: fork k of tape t is the same stream no matter when it is
// taken. This is how one experiment seed fans out into per-process α_i
// streams without correlation.
func (t *Tape) Fork(label uint64) *Tape {
	seed := Mix64(t.lineage ^ Mix64(label)*0x9e3779b97f4a7c15)
	return NewTape(seed)
}

func (t *Tape) setLineage(l uint64) *Tape { t.lineage = l; return t }

// Stream is a labeled family of tapes: a deterministic function from labels
// to independent tapes. Experiments use one Stream per experiment and draw
//
//	stream.Tape(trial, process)
//
// so that trial t, process i always sees the same α_i no matter what ran
// before it — including under parallel execution.
type Stream struct {
	seed uint64
}

// NewStream returns a stream rooted at seed.
func NewStream(seed uint64) Stream { return Stream{seed: seed} }

// Seed reports the root seed.
func (s Stream) Seed() uint64 { return s.seed }

// Tape returns the tape for (trial, proc). Distinct label pairs yield
// statistically independent tapes.
func (s Stream) Tape(trial, proc uint64) *Tape {
	return NewTape(s.tapeSeed(trial, proc))
}

// Sub derives a child stream for a named sub-experiment.
func (s Stream) Sub(label uint64) Stream {
	return Stream{seed: Mix64(s.seed ^ Mix64(label)*0x2545f4914f6cdd1d)}
}
