package rng

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical C implementation.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	// Mix64(x) must equal the first output of a SplitMix64 seeded at x.
	for _, x := range []uint64{0, 1, 42, 0xdeadbeef, math.MaxUint64} {
		if got, want := Mix64(x), NewSplitMix64(x).Next(); got != want {
			t.Errorf("Mix64(%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro256(12345)
	b := NewXoshiro256(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestXoshiroSeedSensitivity(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	const n = 100
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d/%d identical words", same, n)
	}
}

func TestXoshiroBitBalance(t *testing.T) {
	// Crude sanity: each bit position should be ~50% ones over many draws.
	x := NewXoshiro256(7)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := x.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.47 || frac > 0.53 {
			t.Errorf("bit %d frequency %.4f outside [0.47, 0.53]", b, frac)
		}
	}
}

func TestXoshiroJumpDisjointStreams(t *testing.T) {
	// Jump must produce a stream disjoint from the original's prefix:
	// compare a window of outputs before and after the jump.
	base := NewXoshiro256(99)
	jumped := NewXoshiro256(99)
	jumped.Jump()
	seen := make(map[uint64]bool, 2000)
	for i := 0; i < 2000; i++ {
		seen[base.Uint64()] = true
	}
	overlaps := 0
	for i := 0; i < 2000; i++ {
		if seen[jumped.Uint64()] {
			overlaps++
		}
	}
	if overlaps > 0 {
		t.Errorf("jumped stream repeated %d words from the base prefix", overlaps)
	}
}

func TestXoshiroJumpDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("jump not deterministic")
		}
	}
}

func TestTapeBitBudget(t *testing.T) {
	tape, err := NewBoundedTape(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tape.Bit(); err != nil {
			t.Fatalf("bit %d within budget failed: %v", i, err)
		}
	}
	if _, err := tape.Bit(); !errors.Is(err, ErrTapeExhausted) {
		t.Fatalf("4th bit of a 3-bit tape: err = %v, want ErrTapeExhausted", err)
	}
	if got := tape.Consumed(); got != 3 {
		t.Errorf("Consumed = %d, want 3 (failed draw must not charge)", got)
	}
}

func TestBoundedTapeRejectsNonPositiveBudget(t *testing.T) {
	for _, budget := range []int{0, -1, -100} {
		if _, err := NewBoundedTape(1, budget); err == nil {
			t.Errorf("NewBoundedTape(budget=%d) succeeded, want error", budget)
		}
	}
}

func TestTapeUint64Budget(t *testing.T) {
	tape, err := NewBoundedTape(9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tape.Uint64(); err != nil {
		t.Fatalf("first word within budget: %v", err)
	}
	if _, err := tape.Uint64(); !errors.Is(err, ErrTapeExhausted) {
		t.Fatalf("second word over budget: err = %v, want ErrTapeExhausted", err)
	}
	if got, want := tape.Remaining(), 100-64; got != want {
		t.Errorf("Remaining = %d, want %d", got, want)
	}
}

func TestTapeUnboundedRemaining(t *testing.T) {
	tape := NewTape(5)
	if got := tape.Remaining(); got != -1 {
		t.Errorf("unbounded Remaining = %d, want -1", got)
	}
	if got := tape.Budget(); got != 0 {
		t.Errorf("unbounded Budget = %d, want 0", got)
	}
}

func TestUintNBounds(t *testing.T) {
	tape := NewTape(11)
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v, err := tape.UintN(n)
			if err != nil {
				t.Fatal(err)
			}
			if v >= n {
				t.Fatalf("UintN(%d) = %d out of range", n, v)
			}
		}
	}
	if _, err := tape.UintN(0); err == nil {
		t.Error("UintN(0) succeeded, want error")
	}
}

func TestUintNUniformity(t *testing.T) {
	tape := NewTape(13)
	const n, trials = 6, 60000
	var counts [n]int
	for i := 0; i < trials; i++ {
		v, err := tape.UintN(n)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("UintN(%d): value %d count %d deviates >5σ from %v", n, v, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	tape := NewTape(17)
	tests := []struct{ lo, hi int }{
		{2, 10}, {-5, 5}, {0, 0}, {7, 7},
	}
	for _, tc := range tests {
		for i := 0; i < 100; i++ {
			v, err := tape.IntRange(tc.lo, tc.hi)
			if err != nil {
				t.Fatal(err)
			}
			if v < tc.lo || v > tc.hi {
				t.Fatalf("IntRange(%d,%d) = %d out of range", tc.lo, tc.hi, v)
			}
		}
	}
	if _, err := tape.IntRange(3, 2); err == nil {
		t.Error("IntRange(3,2) succeeded, want error")
	}
}

func TestFloat64Open01(t *testing.T) {
	tape := NewTape(19)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v, err := tape.Float64Open01()
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || v > 1 {
			t.Fatalf("Float64Open01 = %v outside (0,1]", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	tape := NewTape(23)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			b, err := tape.Bernoulli(p)
			if err != nil {
				t.Fatal(err)
			}
			if b {
				hits++
			}
		}
		frac := float64(hits) / n
		if math.Abs(frac-p) > 0.02 {
			t.Errorf("Bernoulli(%v) frequency %v", p, frac)
		}
	}
	if _, err := tape.Bernoulli(-0.1); err == nil {
		t.Error("Bernoulli(-0.1) succeeded, want error")
	}
	if _, err := tape.Bernoulli(1.1); err == nil {
		t.Error("Bernoulli(1.1) succeeded, want error")
	}
}

func TestForkStability(t *testing.T) {
	// Forks must not depend on parent consumption.
	a := NewTape(31)
	forkEarly := a.Fork(9)
	for i := 0; i < 100; i++ {
		if _, err := a.Uint64(); err != nil {
			t.Fatal(err)
		}
	}
	forkLate := a.Fork(9)
	for i := 0; i < 100; i++ {
		e, err := forkEarly.Uint64()
		if err != nil {
			t.Fatal(err)
		}
		l, err := forkLate.Uint64()
		if err != nil {
			t.Fatal(err)
		}
		if e != l {
			t.Fatalf("fork taken before/after consumption diverged at word %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewTape(37)
	f1 := a.Fork(1)
	f2 := a.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		v1, _ := f1.Uint64()
		v2, _ := f2.Uint64()
		if v1 == v2 {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct fork labels produced %d identical words", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	s := NewStream(99)
	t1 := s.Tape(3, 1)
	t2 := s.Tape(3, 1)
	for i := 0; i < 50; i++ {
		a, _ := t1.Uint64()
		b, _ := t2.Uint64()
		if a != b {
			t.Fatalf("same (trial,proc) tapes diverged at word %d", i)
		}
	}
}

func TestStreamSeparation(t *testing.T) {
	s := NewStream(99)
	pairs := [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {7, 3}}
	first := make(map[uint64][2]uint64, len(pairs))
	for _, p := range pairs {
		v, err := s.Tape(p[0], p[1]).Uint64()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := first[v]; dup {
			t.Fatalf("tapes %v and %v start with identical word %#x", prev, p, v)
		}
		first[v] = p
	}
}

func TestStreamSubSeparation(t *testing.T) {
	s := NewStream(4242)
	a, _ := s.Sub(1).Tape(0, 0).Uint64()
	b, _ := s.Sub(2).Tape(0, 0).Uint64()
	if a == b {
		t.Error("sub-streams with distinct labels produced identical first word")
	}
	if s.Sub(1).Seed() == s.Seed() {
		t.Error("Sub did not change the seed")
	}
}

func TestQuickUintNAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw%1000) + 1
		tape := NewTape(seed)
		v, err := tape.UintN(n)
		return err == nil && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickForkStableUnderConsumption(t *testing.T) {
	f := func(seed, label uint64, consume uint8) bool {
		a := NewTape(seed)
		early, _ := a.Fork(label).Uint64()
		for i := 0; i < int(consume); i++ {
			if _, err := a.Uint64(); err != nil {
				return false
			}
		}
		late, _ := a.Fork(label).Uint64()
		return early == late
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
