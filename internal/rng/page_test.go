package rng

import "testing"

// drain pulls a mixed sequence of draws from a tape so two tapes can be
// compared over every draw kind, not just Uint64.
func drain(t *testing.T, tape *Tape) [64]uint64 {
	t.Helper()
	var out [64]uint64
	for i := range out {
		switch i % 4 {
		case 0:
			v, err := tape.Uint64()
			if err != nil {
				t.Fatalf("Uint64: %v", err)
			}
			out[i] = v
		case 1:
			b, err := tape.Bit()
			if err != nil {
				t.Fatalf("Bit: %v", err)
			}
			out[i] = uint64(b)
		case 2:
			v, err := tape.UintN(97)
			if err != nil {
				t.Fatalf("UintN: %v", err)
			}
			out[i] = v
		case 3:
			f, err := tape.Float64Open01()
			if err != nil {
				t.Fatalf("Float64Open01: %v", err)
			}
			out[i] = uint64(f * (1 << 53))
		}
	}
	return out
}

func TestTapeReseedMatchesNewTape(t *testing.T) {
	reused := NewTape(0xdead)
	// Dirty every piece of tape state before reseeding.
	for i := 0; i < 100; i++ {
		if _, err := reused.Bit(); err != nil {
			t.Fatalf("Bit: %v", err)
		}
	}
	for _, seed := range []uint64{0, 1, 42, 0x9e3779b97f4a7c15, ^uint64(0)} {
		reused.Reseed(seed)
		fresh := NewTape(seed)
		if got, want := drain(t, reused), drain(t, fresh); got != want {
			t.Fatalf("seed %#x: reseeded tape diverged from NewTape", seed)
		}
		// Fork lineage must follow the reseed too.
		reused.Reseed(seed)
		a := drain(t, reused.Fork(7))
		b := drain(t, NewTape(seed).Fork(7))
		if a != b {
			t.Fatalf("seed %#x: fork after Reseed diverged", seed)
		}
	}
}

func TestStreamReseedMatchesStreamTape(t *testing.T) {
	s := NewStream(1992)
	reused := NewTape(0)
	for trial := uint64(0); trial < 20; trial++ {
		for proc := uint64(0); proc <= 5; proc++ {
			s.Reseed(reused, trial, proc)
			if got, want := drain(t, reused), drain(t, s.Tape(trial, proc)); got != want {
				t.Fatalf("trial %d proc %d: Stream.Reseed diverged from Stream.Tape", trial, proc)
			}
		}
	}
}

func TestSeedPageMatchesStreamTape(t *testing.T) {
	s := NewStream(0xc0ffee)
	var page SeedPage
	page.Fill(s, 10, 40, 6)
	reused := NewTape(0)
	for trial := uint64(10); trial < 40; trial++ {
		for proc := uint64(0); proc <= 6; proc++ {
			reused.Reseed(page.Seed(trial, proc))
			if got, want := drain(t, reused), drain(t, s.Tape(trial, proc)); got != want {
				t.Fatalf("trial %d proc %d: page seed diverged from Stream.Tape", trial, proc)
			}
		}
	}
	// Out-of-range lookups fall back to the direct formula.
	if got, want := page.Seed(1000, 3), s.tapeSeed(1000, 3); got != want {
		t.Fatalf("out-of-range Seed = %#x, want %#x", got, want)
	}
	if got, want := page.Seed(15, 9), s.tapeSeed(15, 9); got != want {
		t.Fatalf("out-of-proc Seed = %#x, want %#x", got, want)
	}
}

func TestSeedPageEnsure(t *testing.T) {
	s := NewStream(7)
	var page SeedPage
	page.Ensure(s, 5, 3)
	if page.lo != 5 || page.hi != 5+DefaultPageTrials {
		t.Fatalf("Ensure range = [%d, %d)", page.lo, page.hi)
	}
	before := &page.seeds[0]
	page.Ensure(s, 5+DefaultPageTrials-1, 3) // still covered: no refill
	if &page.seeds[0] != before || page.lo != 5 {
		t.Fatal("Ensure refilled a covered page")
	}
	page.Ensure(s, 5+DefaultPageTrials, 3) // past the edge: refill
	if page.lo != 5+DefaultPageTrials {
		t.Fatalf("Ensure did not advance, lo = %d", page.lo)
	}
	if got, want := page.Seed(5+DefaultPageTrials, 2), s.tapeSeed(5+DefaultPageTrials, 2); got != want {
		t.Fatalf("Seed after refill = %#x, want %#x", got, want)
	}
	// A different stream with the same range must also refill.
	page.Ensure(NewStream(8), 5+DefaultPageTrials, 3)
	if got, want := page.Seed(5+DefaultPageTrials, 2), NewStream(8).tapeSeed(5+DefaultPageTrials, 2); got != want {
		t.Fatalf("Seed after stream switch = %#x, want %#x", got, want)
	}
}

func TestBankReseedFrom(t *testing.T) {
	s := NewStream(31)
	var page SeedPage
	page.Ensure(s, 0, 4)
	bank := NewBank(4)
	if bank.Procs() != 4 {
		t.Fatalf("Procs = %d", bank.Procs())
	}
	for trial := uint64(0); trial < 8; trial++ {
		bank.ReseedFrom(&page, trial)
		for proc := 0; proc <= 4; proc++ {
			if got, want := drain(t, bank.Tape(proc)), drain(t, s.Tape(trial, uint64(proc))); got != want {
				t.Fatalf("trial %d proc %d: bank tape diverged", trial, proc)
			}
		}
	}
	bank.Grow(6)
	if bank.Procs() != 6 {
		t.Fatalf("Procs after Grow = %d", bank.Procs())
	}
	bank.Grow(2) // never shrinks
	if bank.Procs() != 6 {
		t.Fatalf("Procs after no-op Grow = %d", bank.Procs())
	}
}

func TestHotPathAllocs(t *testing.T) {
	s := NewStream(1992)
	var page SeedPage
	page.Ensure(s, 0, 4)
	bank := NewBank(4)
	trial := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		page.Ensure(s, trial, 4)
		bank.ReseedFrom(&page, trial)
		for proc := 0; proc <= 4; proc++ {
			if _, err := bank.Tape(proc).Uint64(); err != nil {
				t.Fatal(err)
			}
		}
		trial++
	})
	if allocs != 0 {
		t.Fatalf("steady-state reseed loop allocates %v per trial, want 0", allocs)
	}
}
