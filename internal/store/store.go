// Package store is coordd's durable second result tier: a
// content-addressed on-disk store keyed by the service layer's
// canonical `coordd/v2` sha256 spec keys. It models the discipline the
// paper demands of its processes — settled knowledge must survive a
// crash, and a degraded process must stay safe (answer less, never
// answer wrong):
//
//   - Writes are crash-safe: body written to a temp file in the target
//     shard, fsynced, atomically renamed into place, shard directory
//     fsynced. A crash at any point leaves either the old state or the
//     new state, never a torn entry.
//   - Reads re-verify a checksum binding the entry to both its body
//     bytes *and* its filename; an entry that was corrupted, truncated,
//     or renamed under the wrong key is quarantined (moved to
//     quarantine/) and reported as a miss, never served and never fatal.
//   - The store is size-budgeted: an LRU GC pass runs at open and after
//     every write, evicting least-recently-used entries until the byte
//     budget holds.
//   - Any write-path I/O error (disk full, permissions, dead mount)
//     demotes the store to read-only, logged once; callers keep working
//     from memory.
//
// Layout under the root directory:
//
//	<dir>/ab/abcd…64-hex-key    one entry per key, sharded by key[:2]
//	<dir>/quarantine/<key>      corrupt entries, kept for post-mortem
//
// Entry format: a single header line "coordd-store/v1 <sha256>\n"
// followed by the raw body bytes, where <sha256> is hex over
// "<key>\n<body>" — so the checksum fails both when the body rots and
// when a valid file is attached to the wrong key.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// formatVersion prefixes every entry header. Bump it when the entry
// encoding changes; unrecognized versions are quarantined on read.
const formatVersion = "coordd-store/v1"

const quarantineDir = "quarantine"

// Options tunes Open.
type Options struct {
	// MaxBytes is the byte budget over entry bodies plus headers;
	// 0 means unlimited.
	MaxBytes int64
	// Logf receives one line per degradation and quarantine event;
	// nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	Hits        int64
	Misses      int64
	Writes      int64
	Evictions   int64
	Quarantined int64
	Entries     int
	Bytes       int64
	Degraded    bool
}

// Store is a crash-safe, content-addressed, size-budgeted result store.
// It is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	logf     func(format string, args ...any)

	hits, misses, writes, evictions, quarantined atomic.Int64

	mu       sync.Mutex
	entries  map[string]*entry
	bytes    int64 // sum of entry file sizes
	degraded bool
}

// entry is the in-memory index record for one on-disk file: its size
// and last-use time, which is all the LRU GC needs. File mtimes are
// kept roughly in sync so recency survives a restart.
type entry struct {
	size  int64
	atime time.Time
}

// Open creates or reopens a store rooted at dir: it builds the entry
// index from the files already present (sweeping stray temp files) and
// runs one GC pass so a shrunken budget takes effect immediately.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		logf:     opts.Logf,
		entries:  make(map[string]*entry),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.gc()
	s.mu.Unlock()
	return s, nil
}

// scan rebuilds the index from disk. Unrecognized files inside shard
// directories are left alone except temp files, which a crash mid-write
// can strand and which are deleted.
func (s *Store) scan() error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || !isShardName(shard.Name()) {
			continue
		}
		shardPath := filepath.Join(s.dir, shard.Name())
		files, err := os.ReadDir(shardPath)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "tmp-") {
				_ = os.Remove(filepath.Join(shardPath, name))
				continue
			}
			if !isKey(name) || name[:2] != shard.Name() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.entries[name] = &entry{size: info.Size(), atime: info.ModTime()}
			s.bytes += info.Size()
		}
	}
	return nil
}

func isShardName(name string) bool {
	return len(name) == 2 && isHex(name)
}

// isKey reports whether name is a well-formed spec key: 64 lowercase
// hex characters. Everything else is rejected before touching the
// filesystem, which also closes the path-traversal door.
func isKey(key string) bool {
	return len(key) == 64 && isHex(key)
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// checksum binds an entry to its key and body: hex sha256 over
// "<key>\n<body>".
func checksum(key string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// encode renders the on-disk form of one entry.
func encode(key string, body []byte) []byte {
	header := formatVersion + " " + checksum(key, body) + "\n"
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	out = append(out, body...)
	return out
}

// decode parses and verifies an entry file read for key, returning the
// body or an error describing the corruption.
func decode(key string, data []byte) ([]byte, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	version, sum, ok := strings.Cut(string(data[:nl]), " ")
	if !ok || version != formatVersion {
		return nil, fmt.Errorf("bad header version %q", version)
	}
	body := data[nl+1:]
	if got := checksum(key, body); got != sum {
		return nil, fmt.Errorf("checksum mismatch: header %s, computed %s", sum, got)
	}
	return body, nil
}

// Get returns the stored body for key and whether it was present. A
// corrupt or mis-keyed entry is moved to quarantine/ and reported as a
// miss; I/O errors are plain misses. Hits refresh the entry's recency.
func (s *Store) Get(key string) ([]byte, bool) {
	if !isKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, err := decode(key, data)
	if err != nil {
		s.quarantine(key, path, err)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.touch(key)
	return body, true
}

// touch refreshes an entry's LRU recency, mirroring it to the file
// mtime (best effort) so restarts keep an approximate access order.
func (s *Store) touch(key string) {
	now := time.Now()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.atime = now
	}
	s.mu.Unlock()
	_ = os.Chtimes(s.path(key), now, now)
}

// quarantine moves a corrupt entry out of the serving tree so the next
// Get misses cleanly and the bytes stay available for post-mortem.
func (s *Store) quarantine(key, path string, cause error) {
	s.quarantined.Add(1)
	dest := filepath.Join(s.dir, quarantineDir, key)
	if err := os.Rename(path, dest); err != nil {
		// Renaming out failed; removing is the next-safest way to stop
		// serving the corrupt bytes.
		_ = os.Remove(path)
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.size
		delete(s.entries, key)
	}
	s.mu.Unlock()
	if s.logf != nil {
		s.logf("store: quarantined %s: %v", key, cause)
	}
}

// Put durably stores body under key and runs a GC pass. On a write-path
// error the store demotes itself to read-only (logged once) and returns
// the error; callers are expected to treat that as advisory — the
// computation already succeeded, only its persistence failed.
func (s *Store) Put(key string, body []byte) error {
	if !isKey(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded {
		return nil
	}
	if e, ok := s.entries[key]; ok {
		// Keys are content addresses: an existing entry already holds
		// these bytes, so only its recency changes.
		e.atime = time.Now()
		return nil
	}
	size, err := s.writeEntry(key, body)
	if err != nil {
		s.demote(err)
		return err
	}
	s.entries[key] = &entry{size: size, atime: time.Now()}
	s.bytes += size
	s.writes.Add(1)
	s.gc()
	return nil
}

// writeEntry is the atomic write protocol: temp file in the target
// shard, write, fsync, close, rename over the final name, fsync the
// shard directory. Rename within one directory is atomic on POSIX, so
// readers see the old world or the new one, never a torn file.
func (s *Store) writeEntry(key string, body []byte) (int64, error) {
	shard := filepath.Join(s.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return 0, err
	}
	f, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	data := encode(key, body)
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(shard); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// demote flips the store to read-only exactly once. Existing entries
// keep serving reads; new bodies stay memory-only in the caller's tier.
// Called with mu held.
func (s *Store) demote(cause error) {
	if s.degraded {
		return
	}
	s.degraded = true
	if s.logf != nil {
		s.logf("store: write failed, demoting to read-only: %v", cause)
	}
}

// gc evicts least-recently-used entries until the byte budget holds.
// Called with mu held.
func (s *Store) gc() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type victim struct {
		key string
		e   *entry
	}
	all := make([]victim, 0, len(s.entries))
	for k, e := range s.entries {
		all = append(all, victim{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.atime.Before(all[j].e.atime) })
	for _, v := range all {
		if s.bytes <= s.maxBytes {
			break
		}
		_ = os.Remove(s.path(v.key))
		s.bytes -= v.e.size
		delete(s.entries, v.key)
		s.evictions.Add(1)
	}
}

// Degraded reports whether a write-path error has demoted the store to
// read-only.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the indexed on-disk size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots every counter and gauge for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes, degraded := len(s.entries), s.bytes, s.degraded
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Evictions:   s.evictions.Load(),
		Quarantined: s.quarantined.Load(),
		Entries:     entries,
		Bytes:       bytes,
		Degraded:    degraded,
	}
}
