// Package store is coordd's durable second result tier: a
// content-addressed on-disk store keyed by the service layer's
// canonical `coordd/v2` sha256 spec keys. It models the discipline the
// paper demands of its processes — settled knowledge must survive a
// crash, and a degraded process must stay safe (answer less, never
// answer wrong):
//
//   - Writes are crash-safe: body written to a temp file in the target
//     shard, fsynced, atomically renamed into place, shard directory
//     fsynced. A crash at any point leaves either the old state or the
//     new state, never a torn entry.
//   - Reads re-verify a checksum binding the entry to both its body
//     bytes *and* its filename; an entry that was corrupted, truncated,
//     or renamed under the wrong key is quarantined (moved to
//     quarantine/) and reported as a miss, never served and never fatal.
//   - The store is size-budgeted: an LRU GC pass runs at open and after
//     every write, evicting least-recently-used entries until the byte
//     budget holds.
//   - Any write-path I/O error (disk full, permissions, dead mount)
//     demotes the store to read-only, logged once; callers keep working
//     from memory. Degradation is recoverable: a background probe (and
//     the operator Rescan surface) re-admits the store to read-write
//     once a tiny test write succeeds again — a healed disk does not
//     require a restart.
//
// Every filesystem operation goes through the FS interface (fs.go), so
// fault-injection harnesses (internal/chaos) can drive the store
// through deterministic EIO/ENOSPC/torn-write schedules.
//
// Layout under the root directory:
//
//	<dir>/ab/abcd…64-hex-key    one entry per key, sharded by key[:2]
//	<dir>/quarantine/<key>      corrupt entries, kept for post-mortem
//
// Entry format: a single header line "coordd-store/v1 <sha256>\n"
// followed by the raw body bytes, where <sha256> is hex over
// "<key>\n<body>" — so the checksum fails both when the body rots and
// when a valid file is attached to the wrong key.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// formatVersion prefixes every entry header. Bump it when the entry
// encoding changes; unrecognized versions are quarantined on read.
const formatVersion = "coordd-store/v1"

const quarantineDir = "quarantine"

// Options tunes Open.
type Options struct {
	// MaxBytes is the byte budget over entry bodies plus headers;
	// 0 means unlimited.
	MaxBytes int64
	// Logf receives one line per degradation, recovery, and quarantine
	// event; nil discards them.
	Logf func(format string, args ...any)
	// FS overrides the filesystem implementation; nil means the real
	// disk (DiskFS). Chaos harnesses inject faults here.
	FS FS
	// ProbeInterval, when positive, starts a background recovery
	// prober: every interval, while and only while the store is
	// degraded, it attempts one tiny write through the full crash-safe
	// protocol and re-admits the store to read-write on success
	// (counted in Stats.Recoveries). Stop it with Close.
	ProbeInterval time.Duration
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	Hits        int64
	Misses      int64
	Writes      int64
	Evictions   int64
	Quarantined int64
	Recoveries  int64
	Entries     int
	Bytes       int64
	Degraded    bool
}

// QuarantineEntry describes one file held in quarantine/, as listed by
// Quarantine for the admin surface. Name is the bare filename — usually
// a 64-hex key, but crash debris with arbitrary names is listed too.
type QuarantineEntry struct {
	Name    string    `json:"name"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// RescanReport summarizes one Rescan pass for the admin surface.
type RescanReport struct {
	// Verified counts serving-tree entries whose checksum re-verified.
	Verified int `json:"verified"`
	// Quarantined counts serving-tree entries this pass found corrupt
	// and moved to quarantine.
	Quarantined int `json:"quarantined"`
	// Readmitted counts quarantine files that now verify (repaired or
	// falsely accused) and were moved back into the serving tree.
	Readmitted int `json:"readmitted"`
	// QuarantineLeft counts the files still in quarantine afterwards.
	QuarantineLeft int `json:"quarantine_left"`
	// Recovered reports whether this pass un-degraded the store.
	Recovered bool `json:"recovered"`
	// Degraded is the store's state after the pass.
	Degraded bool `json:"degraded"`
}

// Store is a crash-safe, content-addressed, size-budgeted result store.
// It is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	logf     func(format string, args ...any)
	fs       FS

	hits, misses, writes, evictions, quarantined, recoveries atomic.Int64

	mu       sync.Mutex
	entries  map[string]*entry
	bytes    int64 // sum of entry file sizes
	degraded bool

	closeOnce sync.Once
	probeStop chan struct{}
	probeDone chan struct{}
}

// entry is the in-memory index record for one on-disk file: its size
// and last-use time, which is all the LRU GC needs. File mtimes are
// kept roughly in sync so recency survives a restart.
type entry struct {
	size  int64
	atime time.Time
}

// Open creates or reopens a store rooted at dir: it builds the entry
// index from the files already present (sweeping stray temp and probe
// files) and runs one GC pass so a shrunken budget takes effect
// immediately.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	fs := opts.FS
	if fs == nil {
		fs = DiskFS()
	}
	if err := fs.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		logf:     opts.Logf,
		fs:       fs,
		entries:  make(map[string]*entry),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.gc()
	s.mu.Unlock()
	if opts.ProbeInterval > 0 {
		s.probeStop = make(chan struct{})
		s.probeDone = make(chan struct{})
		go s.probeLoop(opts.ProbeInterval)
	}
	return s, nil
}

// Close stops the background recovery prober, if one was started. The
// store itself holds no other resources; reads and writes remain valid
// after Close (a closed store just no longer self-heals).
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.probeStop != nil {
			close(s.probeStop)
			<-s.probeDone
		}
	})
}

// probeLoop is the recovery state machine's timer: degraded → probe →
// (healed) read-write. Probing while healthy is skipped entirely, so
// the loop costs nothing on a healthy daemon.
func (s *Store) probeLoop(interval time.Duration) {
	defer close(s.probeDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-ticker.C:
			if s.Degraded() {
				s.Probe()
			}
		}
	}
}

// scan rebuilds the index from disk. Unrecognized files inside shard
// directories are left alone except temp files, which a crash mid-write
// can strand and which are deleted; stray probe files at the root get
// the same sweep.
func (s *Store) scan() error {
	shards, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			if strings.HasPrefix(shard.Name(), "probe-") {
				_ = s.fs.Remove(filepath.Join(s.dir, shard.Name()))
			}
			continue
		}
		if !isShardName(shard.Name()) {
			continue
		}
		shardPath := filepath.Join(s.dir, shard.Name())
		files, err := s.fs.ReadDir(shardPath)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "tmp-") {
				_ = s.fs.Remove(filepath.Join(shardPath, name))
				continue
			}
			if !isKey(name) || name[:2] != shard.Name() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.entries[name] = &entry{size: info.Size(), atime: info.ModTime()}
			s.bytes += info.Size()
		}
	}
	return nil
}

func isShardName(name string) bool {
	return len(name) == 2 && isHex(name)
}

// isKey reports whether name is a well-formed spec key: 64 lowercase
// hex characters. Everything else is rejected before touching the
// filesystem, which also closes the path-traversal door.
func isKey(key string) bool {
	return len(key) == 64 && isHex(key)
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// checksum binds an entry to its key and body: hex sha256 over
// "<key>\n<body>".
func checksum(key string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// encode renders the on-disk form of one entry.
func encode(key string, body []byte) []byte {
	header := formatVersion + " " + checksum(key, body) + "\n"
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	out = append(out, body...)
	return out
}

// decode parses and verifies an entry file read for key, returning the
// body or an error describing the corruption.
func decode(key string, data []byte) ([]byte, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	version, sum, ok := strings.Cut(string(data[:nl]), " ")
	if !ok || version != formatVersion {
		return nil, fmt.Errorf("bad header version %q", version)
	}
	body := data[nl+1:]
	if got := checksum(key, body); got != sum {
		return nil, fmt.Errorf("checksum mismatch: header %s, computed %s", sum, got)
	}
	return body, nil
}

// Get returns the stored body for key and whether it was present. A
// corrupt or mis-keyed entry is moved to quarantine/ and reported as a
// miss; I/O errors are plain misses. Hits refresh the entry's recency.
func (s *Store) Get(key string) ([]byte, bool) {
	if !isKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, err := decode(key, data)
	if err != nil {
		s.quarantine(key, path, err)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.touch(key)
	return body, true
}

// touch refreshes an entry's LRU recency, mirroring it to the file
// mtime (best effort) so restarts keep an approximate access order.
func (s *Store) touch(key string) {
	now := time.Now()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.atime = now
	}
	s.mu.Unlock()
	_ = s.fs.Chtimes(s.path(key), now, now)
}

// quarantine moves a corrupt entry out of the serving tree so the next
// Get misses cleanly and the bytes stay available for post-mortem.
func (s *Store) quarantine(key, path string, cause error) {
	s.quarantined.Add(1)
	dest := filepath.Join(s.dir, quarantineDir, key)
	if err := s.fs.Rename(path, dest); err != nil {
		// Renaming out failed; removing is the next-safest way to stop
		// serving the corrupt bytes.
		_ = s.fs.Remove(path)
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.size
		delete(s.entries, key)
	}
	s.mu.Unlock()
	if s.logf != nil {
		s.logf("store: quarantined %s: %v", key, cause)
	}
}

// Put durably stores body under key and runs a GC pass. On a write-path
// error the store demotes itself to read-only (logged once) and returns
// the error; callers are expected to treat that as advisory — the
// computation already succeeded, only its persistence failed.
func (s *Store) Put(key string, body []byte) error {
	if !isKey(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded {
		return nil
	}
	if e, ok := s.entries[key]; ok {
		// Keys are content addresses: an existing entry already holds
		// these bytes, so only its recency changes.
		e.atime = time.Now()
		return nil
	}
	size, err := s.writeEntry(key, body)
	if err != nil {
		s.demote(err)
		return err
	}
	s.entries[key] = &entry{size: size, atime: time.Now()}
	s.bytes += size
	s.writes.Add(1)
	s.gc()
	return nil
}

// writeEntry is the atomic write protocol: temp file in the target
// shard, write, fsync, close, rename over the final name, fsync the
// shard directory. Rename within one directory is atomic on POSIX, so
// readers see the old world or the new one, never a torn file.
func (s *Store) writeEntry(key string, body []byte) (int64, error) {
	shard := filepath.Join(s.dir, key[:2])
	if err := s.fs.MkdirAll(shard, 0o755); err != nil {
		return 0, err
	}
	f, err := s.fs.CreateTemp(shard, "tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	data := encode(key, body)
	if _, err := f.Write(data); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return 0, err
	}
	if err := s.fs.Rename(tmp, s.path(key)); err != nil {
		s.fs.Remove(tmp)
		return 0, err
	}
	if err := s.fs.SyncDir(shard); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// demote flips the store to read-only exactly once per outage. Existing
// entries keep serving reads; new bodies stay memory-only in the
// caller's tier until a probe or rescan re-admits the store.
// Called with mu held.
func (s *Store) demote(cause error) {
	if s.degraded {
		return
	}
	s.degraded = true
	if s.logf != nil {
		s.logf("store: write failed, demoting to read-only: %v", cause)
	}
}

// Probe checks whether the write path works again: one tiny write
// through the full temp+fsync protocol, then removed. A degraded store
// whose probe succeeds is re-admitted to read-write (Stats.Recoveries
// counts these transitions); a healthy store probes as a no-op success.
// It returns whether the store is read-write afterwards.
func (s *Store) Probe() bool {
	s.mu.Lock()
	degraded := s.degraded
	s.mu.Unlock()
	if !degraded {
		return true
	}
	if err := s.probeWrite(); err != nil {
		return false
	}
	s.mu.Lock()
	recovered := s.degraded
	s.degraded = false
	s.mu.Unlock()
	if recovered {
		s.recoveries.Add(1)
		if s.logf != nil {
			s.logf("store: write probe succeeded, re-admitting to read-write")
		}
	}
	return true
}

// probeWrite exercises the write path end to end without touching any
// entry: create, write, fsync, close, remove — the cheapest sequence
// that would have failed during the outage.
func (s *Store) probeWrite() error {
	f, err := s.fs.CreateTemp(s.dir, "probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write([]byte(formatVersion + " probe\n")); err != nil {
		f.Close()
		s.fs.Remove(name)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(name)
		return err
	}
	return s.fs.Remove(name)
}

// Quarantine lists the files currently held in quarantine/, sorted by
// name. Unreadable metadata is reported as a zero-sized entry rather
// than omitted, so the operator always sees every file.
func (s *Store) Quarantine() []QuarantineEntry {
	files, err := s.fs.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return nil
	}
	out := make([]QuarantineEntry, 0, len(files))
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		qe := QuarantineEntry{Name: f.Name()}
		if info, err := f.Info(); err == nil {
			qe.Size = info.Size()
			qe.ModTime = info.ModTime()
		}
		out = append(out, qe)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Rescan is the operator maintenance pass behind POST
// /v1/admin/store/rescan: it probes the write path (possibly
// un-degrading the store), re-verifies every indexed entry against its
// checksum (quarantining any that rotted since it was written), and
// re-admits quarantine files that verify again — an operator who
// repaired or restored a quarantined file gets it back into the serving
// tree without a restart.
func (s *Store) Rescan() RescanReport {
	var rep RescanReport
	wasDegraded := s.Degraded()
	healthy := s.Probe()
	rep.Recovered = wasDegraded && healthy

	// Re-verify the serving tree against a snapshot of the index; Get's
	// ordinary quarantine path handles anything that fails.
	s.mu.Lock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		data, err := s.fs.ReadFile(s.path(k))
		if err != nil {
			// Unreadable is not provably corrupt: leave the entry alone
			// (a transient IO error must not throw away good bytes).
			continue
		}
		if _, err := decode(k, data); err != nil {
			s.quarantine(k, s.path(k), err)
			rep.Quarantined++
			continue
		}
		rep.Verified++
	}

	// Re-admit quarantine files that verify now. Only well-formed key
	// names can re-enter the serving tree; crash debris stays put.
	for _, qe := range s.Quarantine() {
		if !isKey(qe.Name) {
			continue
		}
		qpath := filepath.Join(s.dir, quarantineDir, qe.Name)
		data, err := s.fs.ReadFile(qpath)
		if err != nil {
			continue
		}
		if _, err := decode(qe.Name, data); err != nil {
			continue
		}
		s.mu.Lock()
		_, indexed := s.entries[qe.Name]
		s.mu.Unlock()
		if indexed {
			// The serving tree already holds these bytes (checksums bind
			// key and body, so the copies are identical); drop the
			// duplicate instead of moving it back.
			_ = s.fs.Remove(qpath)
			continue
		}
		shard := filepath.Join(s.dir, qe.Name[:2])
		if err := s.fs.MkdirAll(shard, 0o755); err != nil {
			continue
		}
		if err := s.fs.Rename(qpath, s.path(qe.Name)); err != nil {
			continue
		}
		now := time.Now()
		s.mu.Lock()
		s.entries[qe.Name] = &entry{size: int64(len(data)), atime: now}
		s.bytes += int64(len(data))
		s.gc()
		s.mu.Unlock()
		rep.Readmitted++
		if s.logf != nil {
			s.logf("store: readmitted %s from quarantine", qe.Name)
		}
	}

	rep.QuarantineLeft = len(s.Quarantine())
	rep.Degraded = s.Degraded()
	return rep
}

// gc evicts least-recently-used entries until the byte budget holds.
// Called with mu held.
func (s *Store) gc() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type victim struct {
		key string
		e   *entry
	}
	all := make([]victim, 0, len(s.entries))
	for k, e := range s.entries {
		all = append(all, victim{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.atime.Before(all[j].e.atime) })
	for _, v := range all {
		if s.bytes <= s.maxBytes {
			break
		}
		_ = s.fs.Remove(s.path(v.key))
		s.bytes -= v.e.size
		delete(s.entries, v.key)
		s.evictions.Add(1)
	}
}

// Degraded reports whether a write-path error has demoted the store to
// read-only.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns every indexed key in sorted order. The cluster's
// anti-entropy repair loop walks this to find results whose replica
// set is under-populated.
func (s *Store) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.entries))
	for key := range s.entries {
		out = append(out, key)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Bytes reports the indexed on-disk size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots every counter and gauge for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes, degraded := len(s.entries), s.bytes, s.degraded
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Evictions:   s.evictions.Load(),
		Quarantined: s.quarantined.Load(),
		Recoveries:  s.recoveries.Load(),
		Entries:     entries,
		Bytes:       bytes,
		Degraded:    degraded,
	}
}
