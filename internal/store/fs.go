package store

import (
	"os"
	"time"
)

// FS is the slice of the filesystem the store drives, factored behind
// an interface so that fault-injection harnesses (internal/chaos) can
// wrap every operation with a deterministic failure schedule. The
// methods mirror the os package one-for-one; DiskFS is the production
// implementation. The store treats any error from a write-path method
// (MkdirAll, CreateTemp, File.Write/Sync/Close, Rename, SyncDir) as a
// degradation event — see Store.demote.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chtimes(name string, atime, mtime time.Time) error
	// CreateTemp creates a new temp file in dir, in os.CreateTemp's
	// pattern language, returning a handle restricted to what the write
	// protocol needs.
	CreateTemp(dir, pattern string) (File, error)
	// SyncDir fsyncs a directory, making a just-renamed entry durable.
	SyncDir(name string) error
}

// File is the write-protocol view of one open file.
type File interface {
	Name() string
	Write(p []byte) (n int, err error)
	Sync() error
	Close() error
}

// DiskFS returns the real-filesystem implementation of FS.
func DiskFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
