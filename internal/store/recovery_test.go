package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// breakRoot defeats the write path in a way that survives root
// privileges: the store root becomes a regular file, so every MkdirAll
// and CreateTemp under it fails.
func breakRoot(t *testing.T, dir string) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// healRoot undoes breakRoot: the directory exists again (empty — the
// outage destroyed its contents, as a real dead disk might).
func healRoot(t *testing.T, dir string) {
	t.Helper()
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestProbeRecoversAfterDiskHeals(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := mustOpen(t, dir, Options{})

	breakRoot(t, dir)
	if err := s.Put(key("doomed"), []byte("x")); err == nil {
		t.Fatal("Put on a broken root reported success")
	}
	if !s.Degraded() {
		t.Fatal("write failure did not demote the store")
	}
	// Probing a still-broken disk must not un-degrade.
	if s.Probe() {
		t.Fatal("Probe reported healthy on a broken root")
	}
	if s.Stats().Recoveries != 0 {
		t.Fatal("failed probe counted as a recovery")
	}

	healRoot(t, dir)
	if !s.Probe() {
		t.Fatal("Probe failed after the disk healed")
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a successful probe")
	}
	if got := s.Stats().Recoveries; got != 1 {
		t.Errorf("recoveries = %d, want 1", got)
	}
	// Read-write again: new bodies persist.
	k := key("after-recovery")
	if err := s.Put(k, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, []byte("back")) {
		t.Errorf("post-recovery Get = %q, %v", got, ok)
	}
	// No stray probe files left in the root.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Errorf("stray file %s left in store root", e.Name())
		}
	}
}

func TestProbeOnHealthyStoreIsNoop(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if !s.Probe() {
		t.Fatal("Probe on a healthy store reported degraded")
	}
	if s.Stats().Recoveries != 0 {
		t.Error("healthy probe counted as a recovery")
	}
}

func TestProbeLoopRecoversInBackground(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := mustOpen(t, dir, Options{ProbeInterval: 10 * time.Millisecond})
	defer s.Close()

	breakRoot(t, dir)
	_ = s.Put(key("doomed"), []byte("x"))
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	healRoot(t, dir)

	deadline := time.Now().Add(5 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("background probe never un-degraded the store")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Stats().Recoveries; got < 1 {
		t.Errorf("recoveries = %d, want >= 1", got)
	}
}

func TestRescanQuarantinesRottenEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := []string{key("ok-1"), key("ok-2"), key("rotten")}
	for _, k := range keys {
		if err := s.Put(k, []byte("body of "+k[:8])); err != nil {
			t.Fatal(err)
		}
	}
	// Rot one entry in place — bits flipped since the write, the decay
	// Rescan exists to find before a client does.
	rotten := keys[2]
	path := filepath.Join(dir, rotten[:2], rotten)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Rescan()
	if rep.Verified != 2 || rep.Quarantined != 1 {
		t.Errorf("report %+v, want 2 verified / 1 quarantined", rep)
	}
	if rep.QuarantineLeft != 1 || rep.Degraded || rep.Recovered {
		t.Errorf("report %+v, want 1 left, healthy, no recovery", rep)
	}
	if _, ok := s.Get(rotten); ok {
		t.Error("rotten entry still served after rescan")
	}
	for _, k := range keys[:2] {
		if _, ok := s.Get(k); !ok {
			t.Errorf("healthy entry %s lost by rescan", k[:8])
		}
	}
}

func TestRescanReadmitsRepairedQuarantineFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k := key("flaky")
	body := []byte(`{"repairable": true}`)
	if err := s.Put(k, body); err != nil {
		t.Fatal(err)
	}
	// Corrupt it, read it (which quarantines it), then "repair" the
	// quarantined copy the way an operator restoring from backup would:
	// valid bytes under the same name.
	path := filepath.Join(dir, k[:2], k)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	qpath := filepath.Join(dir, quarantineDir, k)
	if err := os.WriteFile(qpath, encode(k, body), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Rescan()
	if rep.Readmitted != 1 || rep.QuarantineLeft != 0 {
		t.Errorf("report %+v, want 1 readmitted / 0 left", rep)
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, body) {
		t.Errorf("readmitted entry Get = %q, %v; want original body", got, ok)
	}

	// A quarantine copy of a key that is already indexed again is a
	// duplicate: dropped, not readmitted.
	if err := os.WriteFile(qpath, encode(k, body), 0o644); err != nil {
		t.Fatal(err)
	}
	rep = s.Rescan()
	if rep.Readmitted != 0 || rep.QuarantineLeft != 0 {
		t.Errorf("duplicate pass report %+v, want 0 readmitted / 0 left", rep)
	}
}

func TestRescanUnDegradesAfterHeal(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := mustOpen(t, dir, Options{})
	breakRoot(t, dir)
	_ = s.Put(key("doomed"), []byte("x"))
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	healRoot(t, dir)

	rep := s.Rescan()
	if !rep.Recovered || rep.Degraded {
		t.Errorf("report %+v, want recovered and healthy", rep)
	}
	if s.Degraded() {
		t.Error("store degraded after a recovering rescan")
	}
}

// TestOpenWithCorruptQuarantineDir covers the previously untested path:
// a quarantine directory full of debris — partial files, junk names, a
// nested directory — must neither fail Open nor leak into the index,
// and Rescan must not readmit any of it.
func TestOpenWithCorruptQuarantineDir(t *testing.T) {
	dir := t.TempDir()
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(filepath.Join(qdir, "nested"), 0o755); err != nil {
		t.Fatal(err)
	}
	partial := key("partial-entry")
	if err := os.WriteFile(filepath.Join(qdir, partial), []byte(formatVersion+" deadbeef"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(qdir, "garbage.tmp"), []byte{0x00, 0x01}, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, Options{})
	if s.Len() != 0 {
		t.Errorf("quarantine debris indexed: Len = %d", s.Len())
	}
	q := s.Quarantine()
	if len(q) != 2 {
		t.Fatalf("quarantine listing = %+v, want the 2 files (not the dir)", q)
	}
	if q[0].Name != partial && q[1].Name != partial {
		t.Errorf("partial entry missing from listing %+v", q)
	}

	rep := s.Rescan()
	if rep.Readmitted != 0 {
		t.Errorf("rescan readmitted corrupt quarantine debris: %+v", rep)
	}
	if rep.QuarantineLeft != 2 {
		t.Errorf("quarantine left = %d, want 2", rep.QuarantineLeft)
	}
	// The store works normally around the debris.
	if err := s.Put(key("fresh"), []byte("body")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key("fresh")); !ok {
		t.Error("fresh entry not served")
	}
}

// TestGCRacesConcurrentWrites hammers a tiny-budget store from many
// goroutines so the per-write GC pass constantly evicts while other
// writers and readers run. The assertions are the invariants: no error
// but budget-eviction, byte accounting consistent, store healthy.
// Run under -race this is primarily a locking test.
func TestGCRacesConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("z"), 400)
	s := mustOpen(t, dir, Options{MaxBytes: 3000})

	var wg sync.WaitGroup
	const writers, perWriter = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := key(fmt.Sprintf("race-%d-%d", w, i))
				if err := s.Put(k, body); err != nil {
					t.Errorf("Put(%s): %v", k[:8], err)
					return
				}
				s.Get(k)
				s.Get(key(fmt.Sprintf("race-%d-%d", (w+1)%writers, i)))
			}
		}(w)
	}
	wg.Wait()

	if s.Degraded() {
		t.Fatal("store degraded under concurrent GC pressure")
	}
	if got := s.Bytes(); got > 3000 {
		t.Errorf("bytes = %d over the 3000 budget after the dust settled", got)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions under a budget sized for ~6 of 200 entries")
	}
	// The index must agree with the disk exactly: reopen and compare.
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != s.Len() || s2.Bytes() != s.Bytes() {
		t.Errorf("reopen sees %d entries / %d bytes, live store %d / %d",
			s2.Len(), s2.Bytes(), s.Len(), s.Bytes())
	}
}
