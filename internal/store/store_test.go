package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// key derives a well-formed 64-hex key from a label, the same way the
// service layer derives keys from canonical specs.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})

	k := key("job-1")
	body := []byte(`{"result": {"ta": 0.25}}`)
	if err := s.Put(k, body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want original body", got, ok)
	}
	if _, ok := s.Get(key("missing")); ok {
		t.Error("missing key reported as a hit")
	}

	// A second store over the same directory — the restart — serves the
	// same bytes without any handoff.
	s2 := mustOpen(t, dir, Options{})
	got, ok = s2.Get(k)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("after reopen Get = %q, %v; want original body", got, ok)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1", s2.Len())
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Degraded {
		t.Errorf("reopened stats %+v", st)
	}
}

func TestRePutRefreshesWithoutRewrite(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	k := key("idempotent")
	if err := s.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if w := s.Stats().Writes; w != 1 {
		t.Errorf("writes = %d, want 1 (re-put of a content address is a no-op)", w)
	}
}

func TestCorruptBodyQuarantinedAndMissesCleanly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k := key("corrupt-me")
	body := []byte(`{"result": {"completed": 20000}}`)
	if err := s.Put(k, body); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of the stored body on disk.
	path := filepath.Join(dir, k[:2], k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := s.Get(k); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still in the serving tree")
	}
	qpath := filepath.Join(dir, quarantineDir, k)
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats after quarantine %+v", st)
	}

	// The store keeps working: the key can be rewritten and served.
	if err := s.Put(k, body); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, body) {
		t.Errorf("rewrite after quarantine Get = %q, %v", got, ok)
	}
}

func TestEntryUnderWrongKeyQuarantined(t *testing.T) {
	// The checksum binds key and body: a valid file renamed into another
	// key's slot (cross-linked backup, fat-fingered restore) must not be
	// served as that key's result.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	kA, kB := key("job-a"), key("job-b")
	if err := s.Put(kA, []byte("body-a")); err != nil {
		t.Fatal(err)
	}
	dest := filepath.Join(dir, kB[:2], kB)
	if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, kA[:2], kA), dest); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(kB); ok {
		t.Fatalf("mis-keyed entry served: %q", got)
	}
	if s.Stats().Quarantined != 1 {
		t.Errorf("stats %+v, want one quarantine", s.Stats())
	}
}

func TestGCEnforcesBudgetLRU(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 1000)
	// Header ≈ 80 bytes, so each entry is ~1080 bytes; budget three.
	s := mustOpen(t, dir, Options{MaxBytes: 3400})
	keys := []string{key("gc-0"), key("gc-1"), key("gc-2")}
	for _, k := range keys {
		if err := s.Put(k, body); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Refresh gc-0 so gc-1 is now the least recently used.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("warm-up get missed")
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Put(key("gc-3"), body); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 3400 {
		t.Errorf("bytes %d over budget", s.Bytes())
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("LRU entry gc-1 survived the GC pass")
	}
	for _, k := range []string{keys[0], keys[2], key("gc-3")} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("recently used entry %s evicted", k[:8])
		}
	}
	if s.Stats().Evictions == 0 {
		t.Error("evictions not counted")
	}
}

func TestOpenGCShrinksToNewBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(fmt.Sprintf("startup-%d", i)), bytes.Repeat([]byte("y"), 500)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Reopen with a budget that fits roughly two entries: the startup GC
	// pass must prune down immediately.
	s2 := mustOpen(t, dir, Options{MaxBytes: 1300})
	if s2.Bytes() > 1300 {
		t.Errorf("startup GC left %d bytes over the 1300 budget", s2.Bytes())
	}
	if s2.Len() >= 5 {
		t.Errorf("startup GC evicted nothing: %d entries", s2.Len())
	}
}

func TestStrayTempFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k := key("real")
	if err := s.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a stranded temp file in the shard.
	stray := filepath.Join(dir, k[:2], "tmp-123456")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray temp file survived reopen")
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (temp file must not be indexed)", s2.Len())
	}
}

func TestWriteErrorDemotesToReadOnly(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := mustOpen(t, dir, Options{})
	k1 := key("written-before-failure")
	if err := s.Put(k1, []byte("safe")); err != nil {
		t.Fatal(err)
	}

	// Break the write path in a way that defeats even root: replace the
	// store root with a regular file, so MkdirAll on a fresh shard fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("doomed-1"), []byte("lost")); err == nil {
		t.Fatal("Put on a broken root reported success")
	}
	if !s.Degraded() {
		t.Fatal("write failure did not demote the store")
	}
	// Demoted means read-only: further puts are silent no-ops, reads
	// (and the caller's jobs) keep working.
	if err := s.Put(key("doomed-2"), []byte("dropped")); err != nil {
		t.Errorf("Put after demotion returned %v, want nil no-op", err)
	}
	if _, ok := s.Get(key("doomed-2")); ok {
		t.Error("demoted store claims to have stored a body")
	}
	if !s.Stats().Degraded {
		t.Error("Stats does not report degradation")
	}
}

func TestMalformedKeysRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, k := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("Z", 64), // right length, not hex
		strings.Repeat("a", 63),
	} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit on a malformed key", k)
		}
	}
}

func TestNoTempFilesLeftAfterPuts(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(key(fmt.Sprintf("clean-%d", i)), []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "tmp-") {
			t.Errorf("temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
