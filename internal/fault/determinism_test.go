package fault_test

import (
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
)

// TestInjectionDeterministicAcrossWorkers mirrors the Monte-Carlo
// determinism discipline for fault injection: the same (seed,
// FaultPlan-sampler) must produce a bit-identical Result whatever the
// worker count — including the Completed/Failed split when the menu
// contains panic faults, since failed trials are decided per trial, not
// per schedule.
func TestInjectionDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	good, err := run.Good(g, rounds, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	menu := fault.SampleConfig{
		PFault: 0.4,
		Kinds: []fault.Kind{
			fault.CrashStop, fault.OmitRound, fault.Stutter,
			fault.PanicSend, fault.PanicStep, fault.NilSend,
		},
	}
	var results []*mc.Result
	for _, workers := range []int{1, 8} {
		res, err := mc.Estimate(mc.Config{
			Protocol:    core.MustS(0.2),
			Graph:       g,
			Run:         good,
			Mutator:     fault.Mutator(1234, g, rounds, menu),
			Trials:      trials,
			Seed:        77,
			Workers:     workers,
			MaxFailures: trials, // every injected panic is absorbed
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	if a.Completed != b.Completed || a.Failed != b.Failed {
		t.Errorf("Completed/Failed differ: %d/%d vs %d/%d", a.Completed, a.Failed, b.Completed, b.Failed)
	}
	if a.Failed == 0 {
		t.Error("panic menu produced no failed trials; the failure path went unexercised")
	}
	if a.Completed == 0 {
		t.Error("no trials completed; the outcome path went unexercised")
	}
	if a.TA != b.TA || a.PA != b.PA || a.NA != b.NA {
		t.Errorf("outcome proportions differ:\nworkers=1: TA=%v PA=%v NA=%v\nworkers=8: TA=%v PA=%v NA=%v",
			a.TA, a.PA, a.NA, b.TA, b.PA, b.NA)
	}
	for i := range a.AttackCounts {
		if a.AttackCounts[i] != b.AttackCounts[i] {
			t.Errorf("AttackCounts[%d] differ: %d vs %d", i, a.AttackCounts[i], b.AttackCounts[i])
		}
	}
}

// TestInjectionSeedSensitivity: different sampler seeds give different
// fault schedules, visible in the outcome distribution — the injection
// is genuinely driven by the seed, not a constant.
func TestInjectionSeedSensitivity(t *testing.T) {
	g := graph.Pair()
	const rounds = 6
	good, err := run.Good(g, rounds, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	menu := fault.SampleConfig{PFault: 0.9, Kinds: []fault.Kind{fault.CrashStop}}
	estimate := func(faultSeed uint64) *mc.Result {
		res, err := mc.Estimate(mc.Config{
			Protocol: core.MustS(0.3),
			Graph:    g,
			Run:      good,
			Mutator:  fault.Mutator(faultSeed, g, rounds, menu),
			Trials:   2000,
			Seed:     5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseline := estimate(1)
	different := false
	for seed := uint64(2); seed <= 4; seed++ {
		if estimate(seed).TA != baseline.TA {
			different = true
			break
		}
	}
	if !different {
		t.Error("three different fault seeds left the TA estimate unchanged")
	}
}
