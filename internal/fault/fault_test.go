package fault_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestPlanValidationAndString(t *testing.T) {
	if _, err := fault.NewPlan(fault.Fault{Proc: 0, Kind: fault.CrashStop, Round: 1}); err == nil {
		t.Error("process 0 accepted")
	}
	if _, err := fault.NewPlan(fault.Fault{Proc: 1, Kind: fault.CrashStop, Round: 0}); err == nil {
		t.Error("round 0 accepted")
	}
	if _, err := fault.NewPlan(fault.Fault{Proc: 1, Kind: fault.Kind(99), Round: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
	p := fault.MustPlan(
		fault.Fault{Proc: 2, Kind: fault.Stutter, Round: 3},
		fault.Fault{Proc: 1, Kind: fault.CrashStop, Round: 2},
		fault.Fault{Proc: 1, Kind: fault.DecisionFlip},
	)
	want := "flip:1,crash:1@2,stutter:2@3"
	if got := p.String(); got != want {
		t.Errorf("plan string = %q, want %q", got, want)
	}
	if !p.Byzantine() {
		t.Error("plan with flip not flagged Byzantine")
	}
	if got := p.FaultyProcs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("faulty procs = %v", got)
	}
	var empty *fault.Plan
	if !empty.Empty() {
		t.Error("nil plan not empty")
	}
}

func TestParseRoundTrip(t *testing.T) {
	plan, err := fault.Parse("crash:2@4, stutter:1@3 ,flip:2", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != "stutter:1@3,flip:2,crash:2@4" {
		t.Errorf("parsed plan = %q", got)
	}
	bad := []string{
		"crash:2",       // missing round
		"crash:9@4",     // process out of range
		"crash:2@40",    // round out of range
		"blorp:1@1",     // unknown kind
		"flip:1@3",      // flip takes no round
		"crash",         // no colon
		"omit:zero@1",   // non-numeric proc
		"omit:1@twelve", // non-numeric round
	}
	for _, spec := range bad {
		if _, err := fault.Parse(spec, 3, 8); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	empty, err := fault.Parse("none", 3, 8)
	if err != nil || !empty.Empty() {
		t.Errorf("Parse(none) = %v, %v", empty, err)
	}
}

// TestInjectNameAndUnwrap: the wrapper identifies itself and exposes the
// wrapped protocol for type dispatch.
func TestInjectNameAndUnwrap(t *testing.T) {
	s := core.MustS(0.1)
	plan := fault.MustPlan(fault.Fault{Proc: 1, Kind: fault.CrashStop, Round: 2})
	p := fault.Inject(s, plan)
	if !strings.Contains(p.Name(), "crash:1@2") || !strings.Contains(p.Name(), s.Name()) {
		t.Errorf("injected name = %q", p.Name())
	}
	up, ok := p.(interface{ Unwrap() protocol.Protocol })
	if !ok || up.Unwrap() != protocol.Protocol(s) {
		t.Error("injected protocol does not unwrap to the original")
	}
	if fault.Inject(s, nil) != s {
		t.Error("empty plan should return the protocol unchanged")
	}
}

// TestCrashEquivalentRun is the cornerstone semantics test: executing
// Protocol S with an injected crash (or omission) equals executing plain
// S on the run with the corresponding deliveries removed — the fault is
// exactly the paper's link adversary in disguise. Checked on every
// process's output, over random runs, plans, and both engines.
func TestCrashEquivalentRun(t *testing.T) {
	s := core.MustS(0.3)
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Complete(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Ring(5); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		for trial := uint64(0); trial < 40; trial++ {
			r := randomRun(t, g, 6, trial)
			plan, err := fault.Sample(11, trial, g, r.N(), fault.SampleConfig{
				PFault: 0.6,
				Kinds:  []fault.Kind{fault.CrashStop, fault.OmitRound, fault.GarbageMessage},
			})
			if err != nil {
				t.Fatal(err)
			}
			eq, err := fault.EquivalentRun(r, plan)
			if err != nil {
				t.Fatal(err)
			}
			tapes := sim.SeedTapes(trial)
			injected, err := sim.Outputs(fault.Inject(s, plan), g, r, tapes)
			if err != nil {
				t.Fatalf("%v plan %v: %v", g, plan, err)
			}
			plain, err := sim.Outputs(s, g, eq, tapes)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= g.NumVertices(); i++ {
				if injected[i] != plain[i] {
					t.Fatalf("%v trial %d plan %v: process %d differs: injected=%v plain-on-%v=%v",
						g, trial, plan, i, injected[i], eq, plain[i])
				}
			}
			conc, err := sim.ConcurrentOutputs(fault.Inject(s, plan), g, r, tapes)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= g.NumVertices(); i++ {
				if conc[i] != injected[i] {
					t.Fatalf("engines disagree under plan %v at %d", plan, i)
				}
			}
		}
	}
}

func TestEquivalentRunRejectsNonOmission(t *testing.T) {
	r := run.MustNew(4)
	for _, k := range []fault.Kind{fault.Stutter, fault.NilSend, fault.PanicSend, fault.PanicStep, fault.DecisionFlip} {
		plan := fault.MustPlan(fault.Fault{Proc: 1, Kind: k, Round: 2})
		if _, err := fault.EquivalentRun(r, plan); err == nil {
			t.Errorf("kind %v accepted by EquivalentRun", k)
		}
	}
	same, err := fault.EquivalentRun(r, nil)
	if err != nil || same != r {
		t.Errorf("empty plan should pass the run through: %v, %v", same, err)
	}
}

// TestInjectedPanicsAreIsolated: planned Send/Step panics surface as
// sim.MachineError carrying the fault.PanicValue — never as a process
// crash or a deadlock.
func TestInjectedPanicsAreIsolated(t *testing.T) {
	s := core.MustS(0.2)
	g := graph.Pair()
	good, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []fault.Kind{fault.PanicSend, fault.PanicStep} {
		plan := fault.MustPlan(fault.Fault{Proc: 2, Kind: k, Round: 3})
		for name, engine := range map[string]func() ([]bool, error){
			"loop":       func() ([]bool, error) { return sim.Outputs(fault.Inject(s, plan), g, good, sim.SeedTapes(1)) },
			"concurrent": func() ([]bool, error) { return sim.ConcurrentOutputs(fault.Inject(s, plan), g, good, sim.SeedTapes(1)) },
		} {
			_, err := engine()
			if err == nil {
				t.Fatalf("%s engine: injected %v produced no error", name, k)
			}
			var me *sim.MachineError
			if !errors.As(err, &me) || !me.Panicked {
				t.Errorf("%s engine: %v is not a recovered panic MachineError", name, err)
				continue
			}
			if pv, ok := me.Value.(fault.PanicValue); !ok || pv.Fault.Kind != k {
				t.Errorf("%s engine: panic value %v does not carry the fault", name, me.Value)
			}
		}
	}
}

// TestNilSendSurfacesAsError: a NilSend fault is the illegal-model case;
// both engines must reject it with an error rather than crash.
func TestNilSendSurfacesAsError(t *testing.T) {
	s := core.MustS(0.2)
	g := graph.Pair()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.MustPlan(fault.Fault{Proc: 1, Kind: fault.NilSend, Round: 2})
	if _, err := sim.Outputs(fault.Inject(s, plan), g, good, sim.SeedTapes(3)); err == nil {
		t.Error("loop engine accepted nil send")
	}
	if _, err := sim.ConcurrentOutputs(fault.Inject(s, plan), g, good, sim.SeedTapes(3)); err == nil {
		t.Error("concurrent engine accepted nil send")
	}
}

// TestStutterAndFlipBehavior: a stutter fault re-delivers stale state
// and must keep the execution well-formed; a flip fault negates exactly
// the faulty process's output.
func TestStutterAndFlipBehavior(t *testing.T) {
	s := core.MustS(1.0) // ε = 1: rfire ≤ 1, everyone with count ≥ 1 attacks
	g := graph.Pair()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Outputs(s, g, good, sim.SeedTapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if !base[1] || !base[2] {
		t.Fatalf("baseline good run should attack everywhere, got %v", base)
	}
	flip := fault.MustPlan(fault.Fault{Proc: 2, Kind: fault.DecisionFlip})
	flipped, err := sim.Outputs(fault.Inject(s, flip), g, good, sim.SeedTapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if flipped[1] != base[1] || flipped[2] == base[2] {
		t.Errorf("flip: got %v from base %v", flipped, base)
	}
	stutter := fault.MustPlan(fault.Fault{Proc: 1, Kind: fault.Stutter, Round: 2})
	st, err := sim.Outputs(fault.Inject(s, stutter), g, good, sim.SeedTapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if !st[1] || !st[2] {
		t.Errorf("stutter on the good run with ε=1 should still reach TA, got %v", st)
	}
}

// TestSampleDeterministic: the same (seed, trial) always yields the same
// plan; different trials eventually differ.
func TestSampleDeterministic(t *testing.T) {
	g, err := graph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fault.SampleConfig{PFault: 0.5}
	seenDifferent := false
	first := ""
	for trial := uint64(0); trial < 50; trial++ {
		a, err := fault.Sample(42, trial, g, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fault.Sample(42, trial, g, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("trial %d: resample differs: %v vs %v", trial, a, b)
		}
		if trial == 0 {
			first = a.String()
		} else if a.String() != first {
			seenDifferent = true
		}
	}
	if !seenDifferent {
		t.Error("50 trials all drew the same plan")
	}
	if _, err := fault.Sample(1, 1, g, 8, fault.SampleConfig{PFault: 1.5}); err == nil {
		t.Error("PFault > 1 accepted")
	}
	capped, err := fault.Sample(1, 1, g, 8, fault.SampleConfig{PFault: 1, MaxFaulty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(capped.FaultyProcs()); got > 2 {
		t.Errorf("MaxFaulty 2 violated: %d faulty", got)
	}
}

func randomRun(t *testing.T, g *graph.G, n int, trial uint64) *run.Run {
	t.Helper()
	tape := sim.SeedTapes(trial ^ 0x5eed)(1)
	r, err := run.RandomSubset(g, n, tape)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSampleRejectsNonFinitePFault(t *testing.T) {
	g := graph.Pair()
	for _, pf := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1, 1.1} {
		if _, err := fault.Sample(1, 0, g, 4, fault.SampleConfig{PFault: pf}); err == nil {
			t.Errorf("PFault=%v accepted", pf)
		}
	}
}
