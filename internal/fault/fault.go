// Package fault is deterministic, seed-reproducible process-fault
// injection for coordinated-attack protocols.
//
// The paper's adversary controls only the links: any message may be lost
// (§2), and Theorem 5.4 bounds liveness no matter how the protocol
// responds. This package models the complementary hazard — misbehaving
// processes — in the spirit of the generalized-omission faults of Godard
// & Perdereau's "Back to the Coordinated Attack Problem": crash-stop,
// per-round send omission, stuttering (resending a stale message),
// garbage and nil messages, panics inside Send/Step, and Byzantine
// decision flips.
//
// A Plan pins the faults of one execution; Sample derives a Plan from a
// (seed, trial) label so a given trial always injects the same faults,
// whatever the worker count — the same determinism discipline as
// internal/mc. Inject wraps any protocol.Protocol so its machines
// express the planned faults; receivers of the wrapped protocol silently
// discard the injected placeholder messages, which makes every omission
// fault exactly equivalent to the paper's link adversary dropping the
// same messages (see EquivalentRun). Validity and Agreement(ε) therefore
// survive all non-Byzantine injected faults; only liveness degrades —
// exactly the Theorem 5.4 tradeoff, now exercised from the process side.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// Kind enumerates the injectable fault behaviors.
type Kind int

const (
	// CrashStop halts the process at its round: from round r on it sends
	// nothing (Silence placeholders), ignores every received message, and
	// its output is frozen at the pre-crash state.
	CrashStop Kind = iota + 1
	// OmitRound suppresses all of the process's sends in one round — the
	// transient "nil-message" omission fault.
	OmitRound
	// Stutter makes the process resend its previous round's messages in
	// one round instead of fresh ones.
	Stutter
	// GarbageMessage makes the process send an alien message type in one
	// round; wrapped receivers discard it (an effective omission), while
	// unwrapped protocols surface it as a Step error.
	GarbageMessage
	// NilSend makes Send return a literal nil in one round — illegal
	// under the model; engines must convert it to an error, not crash.
	NilSend
	// PanicSend panics inside Send in one round, exercising engine panic
	// isolation.
	PanicSend
	// PanicStep panics inside Step in one round.
	PanicStep
	// DecisionFlip negates the final output — the minimal Byzantine
	// fault; it violates safety and must be caught by internal/checker.
	DecisionFlip
)

var kindNames = map[Kind]string{
	CrashStop:      "crash",
	OmitRound:      "omit",
	Stutter:        "stutter",
	GarbageMessage: "garbage",
	NilSend:        "nilsend",
	PanicSend:      "panicsend",
	PanicStep:      "panicstep",
	DecisionFlip:   "flip",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Byzantine reports whether the fault can corrupt safety (Validity or
// Agreement) rather than only degrade liveness or fail the trial.
func (k Kind) Byzantine() bool { return k == DecisionFlip }

// OmissionEquivalent reports whether the fault's effect on the other
// processes equals a link adversary dropping messages — i.e. whether it
// can be folded into the run (EquivalentRun).
func (k Kind) OmissionEquivalent() bool {
	switch k {
	case CrashStop, OmitRound, GarbageMessage:
		return true
	}
	return false
}

// Fault is one injected fault: a process, a behavior, and the round at
// which it strikes (CrashStop: every round ≥ Round; DecisionFlip ignores
// Round; every other kind: exactly round Round).
type Fault struct {
	Proc  graph.ProcID
	Kind  Kind
	Round int
}

func (f Fault) String() string {
	if f.Kind == DecisionFlip {
		return fmt.Sprintf("%v:%d", f.Kind, f.Proc)
	}
	return fmt.Sprintf("%v:%d@%d", f.Kind, f.Proc, f.Round)
}

func (f Fault) validate() error {
	if f.Proc < 1 {
		return fmt.Errorf("fault: %v has invalid process %d", f, f.Proc)
	}
	if _, ok := kindNames[f.Kind]; !ok {
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	if f.Kind != DecisionFlip && f.Round < 1 {
		return fmt.Errorf("fault: %v needs round ≥ 1", f)
	}
	return nil
}

// Plan is the fault schedule of one execution. The zero value injects
// nothing; NewPlan validates and normalizes its faults.
type Plan struct {
	faults []Fault
}

// NewPlan builds a plan from explicit faults, sorted into canonical
// (proc, round, kind) order.
func NewPlan(faults ...Fault) (*Plan, error) {
	p := &Plan{faults: append([]Fault(nil), faults...)}
	for i, f := range p.faults {
		if err := f.validate(); err != nil {
			return nil, err
		}
		if f.Kind == DecisionFlip {
			p.faults[i].Round = 0 // flip has no round; normalize for canonical order
		}
	}
	sort.Slice(p.faults, func(a, b int) bool {
		fa, fb := p.faults[a], p.faults[b]
		if fa.Proc != fb.Proc {
			return fa.Proc < fb.Proc
		}
		if fa.Round != fb.Round {
			return fa.Round < fb.Round
		}
		return fa.Kind < fb.Kind
	})
	return p, nil
}

// MustPlan is NewPlan for known-good literals in tests and examples.
func MustPlan(faults ...Fault) *Plan {
	p, err := NewPlan(faults...)
	if err != nil {
		panic(err)
	}
	return p
}

// Faults returns the plan's faults in canonical order.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.faults) == 0 }

// Byzantine reports whether any fault in the plan can corrupt safety.
func (p *Plan) Byzantine() bool {
	for _, f := range p.faults {
		if f.Kind.Byzantine() {
			return true
		}
	}
	return false
}

// FaultyProcs returns the sorted set of processes with at least one
// fault.
func (p *Plan) FaultyProcs() []graph.ProcID {
	seen := map[graph.ProcID]bool{}
	var out []graph.ProcID
	for _, f := range p.faults {
		if !seen[f.Proc] {
			seen[f.Proc] = true
			out = append(out, f.Proc)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (p *Plan) String() string {
	if p.Empty() {
		return "fault-free"
	}
	parts := make([]string, len(p.faults))
	for i, f := range p.faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Silence is the placeholder a crashed or omitting process puts on the
// wire so the engines' per-edge plumbing stays balanced. Wrapped
// receivers treat it as "nothing arrived"; it is an explicit null for
// message-complexity accounting.
type Silence struct{}

// CAMessage implements protocol.Message.
func (Silence) CAMessage() {}

// Null implements protocol.NullMarker.
func (Silence) Null() bool { return true }

// Junk is the garbage message: an alien type no real protocol
// recognizes.
type Junk struct{ Payload uint64 }

// CAMessage implements protocol.Message.
func (Junk) CAMessage() {}

// injectedMsg reports whether m is one of this package's placeholder
// messages, which wrapped receivers must discard.
func injectedMsg(m protocol.Message) bool {
	switch m.(type) {
	case Silence, Junk:
		return true
	}
	return false
}

// PanicValue is the value injected panics carry, so tests and engine
// hardening can distinguish injected panics from genuine bugs.
type PanicValue struct {
	Fault Fault
}

func (v PanicValue) String() string { return fmt.Sprintf("injected fault %v", v.Fault) }

// Inject wraps p so its machines express the plan's faults. A nil or
// empty plan returns p unchanged. All machines are wrapped — including
// fault-free ones — so that receivers uniformly discard injected
// placeholder messages; an omission fault is thereby exactly a link-loss
// in disguise.
func Inject(p protocol.Protocol, plan *Plan) protocol.Protocol {
	if plan.Empty() {
		return p
	}
	return &injected{inner: p, plan: plan}
}

type injected struct {
	inner protocol.Protocol
	plan  *Plan
}

// Name implements protocol.Protocol.
func (ip *injected) Name() string {
	return fmt.Sprintf("faulty(%s; %v)", ip.inner.Name(), ip.plan)
}

// Unwrap returns the protocol being injected, for callers (such as
// coordsim) that dispatch on the concrete protocol type.
func (ip *injected) Unwrap() protocol.Protocol { return ip.inner }

// Plan returns the fault schedule.
func (ip *injected) Plan() *Plan { return ip.plan }

// NewMachine implements protocol.Protocol.
func (ip *injected) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	inner, err := ip.inner.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	fm := &machine{
		inner:      inner,
		crashRound: 0,
		last:       map[graph.ProcID]protocol.Message{},
	}
	for _, f := range ip.plan.faults {
		if f.Proc != cfg.ID {
			continue
		}
		switch f.Kind {
		case CrashStop:
			if fm.crashRound == 0 || f.Round < fm.crashRound {
				fm.crashRound = f.Round
			}
		case OmitRound:
			fm.omit = addRound(fm.omit, f.Round)
		case Stutter:
			fm.stutter = addRound(fm.stutter, f.Round)
		case GarbageMessage:
			fm.garbage = addRound(fm.garbage, f.Round)
		case NilSend:
			fm.nilsend = addRound(fm.nilsend, f.Round)
		case PanicSend:
			fm.panicSend = f
			fm.panicSendSet = true
		case PanicStep:
			fm.panicStep = f
			fm.panicStepSet = true
		case DecisionFlip:
			fm.flip = true
		}
	}
	return fm, nil
}

func addRound(set map[int]bool, r int) map[int]bool {
	if set == nil {
		set = map[int]bool{}
	}
	set[r] = true
	return set
}

// machine wraps one protocol.Machine with its planned faults.
type machine struct {
	inner protocol.Machine

	crashRound   int // 0 = never
	omit         map[int]bool
	stutter      map[int]bool
	garbage      map[int]bool
	nilsend      map[int]bool
	panicSend    Fault
	panicSendSet bool
	panicStep    Fault
	panicStepSet bool
	flip         bool

	// last caches the most recent genuine message per neighbor, so
	// Stutter has something stale to resend.
	last map[graph.ProcID]protocol.Message
}

var _ protocol.Machine = (*machine)(nil)

func (fm *machine) crashed(round int) bool {
	return fm.crashRound > 0 && round >= fm.crashRound
}

// Send implements protocol.Machine with the planned send-side faults.
func (fm *machine) Send(round int, to graph.ProcID) protocol.Message {
	switch {
	case fm.panicSendSet && round == fm.panicSend.Round:
		panic(PanicValue{Fault: fm.panicSend})
	case fm.crashed(round), fm.omit[round]:
		return Silence{}
	case fm.nilsend[round]:
		return nil
	case fm.garbage[round]:
		return Junk{Payload: uint64(round)<<16 | uint64(to)}
	case fm.stutter[round]:
		if msg, ok := fm.last[to]; ok {
			return msg
		}
		return Silence{}
	}
	msg := fm.inner.Send(round, to)
	if msg != nil {
		fm.last[to] = msg
	}
	return msg
}

// Step implements protocol.Machine: injected placeholder messages are
// discarded (they model "nothing arrived"), a crashed machine ignores
// everything, and a planned Step panic fires before the inner protocol
// runs.
func (fm *machine) Step(round int, received []protocol.Received) error {
	if fm.panicStepSet && round == fm.panicStep.Round {
		panic(PanicValue{Fault: fm.panicStep})
	}
	if fm.crashed(round) {
		return nil
	}
	kept := received[:0:0]
	for _, r := range received {
		if !injectedMsg(r.Msg) {
			kept = append(kept, r)
		}
	}
	return fm.inner.Step(round, kept)
}

// Output implements protocol.Machine. A crashed machine's output is its
// frozen pre-crash state (Step has been a no-op since); DecisionFlip
// negates the inner decision.
func (fm *machine) Output() bool {
	out := fm.inner.Output()
	if fm.flip {
		out = !out
	}
	return out
}
