package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// SampleConfig tunes random plan generation.
type SampleConfig struct {
	// PFault is the probability that each process is faulty.
	PFault float64
	// Kinds is the menu of fault kinds drawn from, uniformly; empty
	// defaults to the non-Byzantine menu {CrashStop, OmitRound, Stutter}.
	Kinds []Kind
	// MaxFaulty caps the number of faulty processes; 0 means no cap.
	MaxFaulty int
}

func (c SampleConfig) validate() error {
	// The NaN comparisons are deliberate: NaN fails neither `< 0` nor
	// `> 1`, so a plain range check would wave it through.
	if math.IsNaN(c.PFault) || c.PFault < 0 || c.PFault > 1 {
		return fmt.Errorf("fault: PFault must be in [0, 1], got %v", c.PFault)
	}
	if c.MaxFaulty < 0 {
		return fmt.Errorf("fault: MaxFaulty must be nonnegative, got %d", c.MaxFaulty)
	}
	for _, k := range c.Kinds {
		if _, ok := kindNames[k]; !ok {
			return fmt.Errorf("fault: unknown kind %d in menu", int(k))
		}
	}
	return nil
}

func (c SampleConfig) kinds() []Kind {
	if len(c.Kinds) > 0 {
		return c.Kinds
	}
	return []Kind{CrashStop, OmitRound, Stutter}
}

// Sample derives the fault plan of one trial from (seed, trial): the
// same label always yields the same plan, whatever the worker count —
// the repository's determinism discipline. Each process independently
// becomes faulty with probability PFault and draws one fault (kind
// uniform from the menu, round uniform in 1..n).
func Sample(seed, trial uint64, g *graph.G, n int, cfg SampleConfig) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("fault: nil graph")
	}
	if n < 1 {
		return nil, fmt.Errorf("fault: need n ≥ 1, got %d", n)
	}
	tape := rng.NewStream(rng.Mix64(seed^0xfa017)).Tape(trial, 0)
	menu := cfg.kinds()
	var faults []Fault
	for i := 1; i <= g.NumVertices(); i++ {
		if cfg.MaxFaulty > 0 && len(faults) >= cfg.MaxFaulty {
			break
		}
		hit, err := tape.Bernoulli(cfg.PFault)
		if err != nil {
			return nil, err
		}
		if !hit {
			continue
		}
		ki, err := tape.UintN(uint64(len(menu)))
		if err != nil {
			return nil, err
		}
		round, err := tape.IntRange(1, n)
		if err != nil {
			return nil, err
		}
		faults = append(faults, Fault{Proc: graph.ProcID(i), Kind: menu[ki], Round: round})
	}
	return NewPlan(faults...)
}

// Mutator adapts sampled fault plans to the Monte-Carlo harness: it is a
// per-trial protocol transformer for mc.Config.Mutator, where trial t
// executes Inject(p, Sample(seed, t, ...)).
func Mutator(seed uint64, g *graph.G, n int, cfg SampleConfig) func(trial uint64, p protocol.Protocol) (protocol.Protocol, error) {
	return func(trial uint64, p protocol.Protocol) (protocol.Protocol, error) {
		plan, err := Sample(seed, trial, g, n, cfg)
		if err != nil {
			return nil, err
		}
		return Inject(p, plan), nil
	}
}

// EquivalentRun folds a plan of omission-equivalent faults into the run:
// the execution of Inject(p, plan) on r is the execution of plain p on
// the returned run. CrashStop removes every delivery from and to the
// process at rounds ≥ its crash round; OmitRound and GarbageMessage
// remove the process's outgoing deliveries in their round. It errors on
// kinds whose effect cannot be expressed as message loss (Stutter,
// NilSend, the panics, DecisionFlip).
//
// The from-and-to convention makes the equivalence exact for protocols
// whose Step is a no-op on an empty inbox (information-driven protocols
// such as Protocol S): a crashed machine frozen mid-run and a live
// machine that never hears anything again end in the same state.
func EquivalentRun(r *run.Run, plan *Plan) (*run.Run, error) {
	if plan.Empty() {
		return r, nil
	}
	for _, f := range plan.faults {
		if !f.Kind.OmissionEquivalent() {
			return nil, fmt.Errorf("fault: %v is not omission-equivalent", f)
		}
	}
	return r.Restrict(func(d run.Delivery) bool {
		for _, f := range plan.faults {
			switch f.Kind {
			case CrashStop:
				if d.Round >= f.Round && (d.From == f.Proc || d.To == f.Proc) {
					return false
				}
			case OmitRound, GarbageMessage:
				if d.Round == f.Round && d.From == f.Proc {
					return false
				}
			}
		}
		return true
	}), nil
}

// Parse parses a comma-separated fault spec for the CLIs. Each item is
// kind:proc@round (round omitted for flip): for example
// "crash:2@4,stutter:1@3,flip:1". Kinds: crash, omit, stutter, garbage,
// nilsend, panicsend, panicstep, flip. m and n bound the process ids and
// rounds.
func Parse(spec string, m, n int) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return &Plan{}, nil
	}
	byName := map[string]Kind{}
	for k, name := range kindNames {
		byName[name] = k
	}
	var faults []Fault
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		kindStr, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("fault: item %q is not kind:proc[@round]", item)
		}
		kind, ok := byName[kindStr]
		if !ok {
			return nil, fmt.Errorf("fault: unknown kind %q (want crash|omit|stutter|garbage|nilsend|panicsend|panicstep|flip)", kindStr)
		}
		procStr, roundStr, hasRound := strings.Cut(rest, "@")
		proc, err := strconv.Atoi(procStr)
		if err != nil || proc < 1 || proc > m {
			return nil, fmt.Errorf("fault: item %q: process must be in 1..%d", item, m)
		}
		round := 1
		if kind == DecisionFlip {
			if hasRound {
				return nil, fmt.Errorf("fault: item %q: flip takes no round", item)
			}
		} else {
			if !hasRound {
				return nil, fmt.Errorf("fault: item %q needs @round", item)
			}
			round, err = strconv.Atoi(roundStr)
			if err != nil || round < 1 || round > n {
				return nil, fmt.Errorf("fault: item %q: round must be in 1..%d", item, n)
			}
		}
		faults = append(faults, Fault{Proc: graph.ProcID(proc), Kind: kind, Round: round})
	}
	return NewPlan(faults...)
}
