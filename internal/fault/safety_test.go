package fault_test

import (
	"math"
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// TestSafetySurvivesNonByzantineFaults is the safety regression harness
// of the fault subsystem: Protocol S under injected crash, omission, and
// stutter faults must still satisfy Validity (input-free runs never
// attack) and Agreement(ε) (per-(run, plan) disagreement probability at
// most ε). Per Theorem 5.4, process faults can only lower liveness —
// they shrink the information the run delivers — so any safety
// violation here is a bug in the injector or the engines. The test
// drives ≥ 10 000 randomized trials across graphs, runs, plans, and
// tapes.
func TestSafetySurvivesNonByzantineFaults(t *testing.T) {
	const (
		eps         = 0.25
		rounds      = 6
		runsPer     = 8
		plansPerRun = 2
		tapesPer    = 250
	)
	s := core.MustS(eps)
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Complete(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Line(3); err == nil {
		graphs = append(graphs, g)
	}
	menu := fault.SampleConfig{
		PFault: 0.7,
		Kinds:  []fault.Kind{fault.CrashStop, fault.OmitRound, fault.Stutter},
	}
	// Per-combo Hoeffding bound: with tapesPer samples, the empirical PA
	// frequency of a true probability ≤ ε exceeds ε + radius with
	// probability ≤ exp(-2·tapesPer·radius²); radius for δ = 1e-9 per
	// combo keeps the whole suite deterministic in practice.
	radius := math.Sqrt(math.Log(1e9) / (2 * tapesPer))

	trials := 0
	for gi, g := range graphs {
		for ri := 0; ri < runsPer; ri++ {
			label := uint64(gi*1000 + ri)
			r := randomRun(t, g, rounds, label)
			// Half the runs audit validity: strip the inputs.
			checkValidity := ri%2 == 0
			if checkValidity {
				for _, i := range r.Inputs() {
					r.RemoveInput(i)
				}
			} else if !r.AnyInput() {
				r.AddInput(1)
			}
			for pi := 0; pi < plansPerRun; pi++ {
				plan, err := fault.Sample(99, label*uint64(plansPerRun)+uint64(pi), g, rounds, menu)
				if err != nil {
					t.Fatal(err)
				}
				pa := 0
				for rep := 0; rep < tapesPer; rep++ {
					outs, err := sim.Outputs(fault.Inject(s, plan), g, r,
						sim.StreamTapes(rng.NewStream(0xabcd^label), uint64(pi*tapesPer+rep)))
					if err != nil {
						t.Fatalf("%v run %v plan %v: %v", g, r, plan, err)
					}
					trials++
					if checkValidity {
						for i := 1; i < len(outs); i++ {
							if outs[i] {
								t.Fatalf("VALIDITY VIOLATION: %v plan %v: process %d attacked on input-free run %v",
									g, plan, i, r)
							}
						}
					}
					if protocol.Classify(outs) == protocol.PartialAttack {
						pa++
					}
				}
				if freq := float64(pa) / tapesPer; freq > eps+radius {
					t.Errorf("AGREEMENT VIOLATION: %v run %v plan %v: Pr[PA] ≈ %.3f > ε=%.2f + radius %.3f",
						g, r, plan, freq, eps, radius)
				}
			}
		}
	}
	if trials < 10_000 {
		t.Fatalf("property harness drove only %d trials, want ≥ 10000", trials)
	}
}

// TestDecisionFlipViolatesSafety: the Byzantine decision-flip fault must
// produce detectable safety violations — the negative control proving
// the harness has teeth. A flipped process attacks on input-free runs
// (Validity broken) and disagrees almost surely on the good run with a
// liveness-1 parameterization (Agreement broken).
func TestDecisionFlipViolatesSafety(t *testing.T) {
	s := core.MustS(1.0)
	g := graph.Pair()
	flip := fault.MustPlan(fault.Fault{Proc: 2, Kind: fault.DecisionFlip})
	p := fault.Inject(s, flip)

	silent, err := run.Silent(4)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := sim.Outputs(p, g, silent, sim.SeedTapes(1))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[2] {
		t.Error("flipped process did not attack on the input-free run — validity violation not expressed")
	}

	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	disagreements := 0
	for rep := 0; rep < 200; rep++ {
		outs, err := sim.Outputs(p, g, good, sim.SeedTapes(uint64(rep)))
		if err != nil {
			t.Fatal(err)
		}
		if protocol.Classify(outs) == protocol.PartialAttack {
			disagreements++
		}
	}
	if disagreements < 150 {
		t.Errorf("flip produced only %d/200 disagreements on the good run; expected almost sure PA", disagreements)
	}
}
