package lowerbound

import (
	"strings"
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func TestCertifyGoodRun(t *testing.T) {
	s := core.MustS(0.1)
	g := graph.Pair()
	r, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(s, g, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Steps) < 2 {
		t.Fatalf("chain too short: %d steps", len(cert.Steps))
	}
	// The chain must end at level 0 with probability 0.
	last := cert.Steps[len(cert.Steps)-1]
	if last.Level != 0 || last.AttackProb != 0 {
		t.Errorf("final step level=%d prob=%v, want 0/0", last.Level, last.AttackProb)
	}
	// Levels strictly descend along the chain.
	for i := 1; i < len(cert.Steps); i++ {
		if cert.Steps[i].Level >= cert.Steps[i-1].Level {
			t.Errorf("level did not descend: step %d has %d after %d",
				i, cert.Steps[i].Level, cert.Steps[i-1].Level)
		}
	}
	attack, budget := cert.Bound()
	if attack > budget+1e-12 {
		t.Errorf("certified bound violated: %v > %v", attack, budget)
	}
	if !strings.Contains(cert.String(), "Theorem 5.4 certificate") {
		t.Error("String rendering broken")
	}
}

func TestCertifyRandomRuns(t *testing.T) {
	s := core.MustS(0.2)
	ring, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(55)
	for trial := 0; trial < 100; trial++ {
		r, err := run.RandomSubset(ring, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			cert, err := Certify(s, ring, r, i)
			if err != nil {
				t.Fatalf("trial %d, proc %d on %v: %v", trial, i, r, err)
			}
			// Each step's clipped run is a subset of its run.
			for _, st := range cert.Steps {
				if !st.Clipped.SubsetOf(st.Run) {
					t.Fatal("clip not subset in certificate")
				}
			}
		}
	}
}

func TestCertifyChainLengthMatchesLevel(t *testing.T) {
	// The chain has exactly L_i(R)+1 steps: one per level, plus the base.
	s := core.MustS(0.05)
	g := graph.Pair()
	good, err := run.Good(g, 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 2, 4, 6} {
		r := run.Prefix(good, k)
		cert, err := Certify(s, g, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := cert.Steps[0].Level + 1; len(cert.Steps) != want {
			t.Errorf("prefix %d: %d steps, want L+1 = %d", k, len(cert.Steps), want)
		}
	}
}

func TestCertifyRejectsVariants(t *testing.T) {
	g := graph.Pair()
	r, err := run.Good(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	slack, err := core.NewSWithSlack(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(slack, g, r, 1); err == nil {
		t.Error("slack variant accepted")
	}
	alt, err := core.NewSAltValidity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(alt, g, r, 1); err == nil {
		t.Error("alt-validity variant accepted")
	}
}
