// Package lowerbound makes the paper's Theorem 5.4 proof executable.
//
// Lemma 5.3's induction is constructive: to bound Pr[D_i|R] by U·L_i(R),
// clip R with respect to i (the clipped run is indistinguishable to i,
// Lemma 4.2), find the process k whose level dropped below L_i(R) in the
// clip (Lemma 5.2 guarantees one), charge one window of unsafety for the
// i-vs-k disagreement gap (Lemma 2.2), and recurse on (k, clip) until
// level 0, where validity forces probability 0.
//
// Certify walks exactly that recursion and emits the chain as data — a
// *certificate* — then verifies every step numerically against Protocol
// S's exact analysis: the per-step attack probabilities must descend by
// at most ε per level, ending at 0. The lower-bound proof is thereby not
// just cited but replayed, step by step, on any run.
package lowerbound

import (
	"fmt"
	"strings"

	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// Step is one link of the induction chain.
type Step struct {
	// Proc is the process the induction currently bounds.
	Proc graph.ProcID
	// Run is the run before clipping at this step.
	Run *run.Run
	// Level is L_Proc(Run): the inductive budget U·Level.
	Level int
	// AttackProb is Pr[D_Proc | Run] for Protocol S (exact).
	AttackProb float64
	// Clipped is Clip_Proc(Run); the next step's run.
	Clipped *run.Run
	// Next is the Lemma 5.2 witness: a process whose level in Clipped is
	// at most Level-1 (unset on the final, level-0 step).
	Next graph.ProcID
}

// Certificate is the full chain from (i, R) down to level 0.
type Certificate struct {
	Epsilon float64
	Steps   []Step
}

// Certify builds and verifies the Lemma 5.3 chain for Protocol S on
// (g, r) starting at process i. It returns an error if any step of the
// paper's argument fails to hold numerically — which would falsify the
// implementation, not the theorem.
func Certify(s *core.S, g *graph.G, r *run.Run, i graph.ProcID) (*Certificate, error) {
	if s.Slack() != 0 || s.FireFloor() != 0 {
		return nil, fmt.Errorf("lowerbound: certificates are for the paper's Protocol S (slack 0, floor 0)")
	}
	m := g.NumVertices()
	cert := &Certificate{Epsilon: s.Epsilon()}
	cur := r.Clone()
	proc := i
	for depth := 0; ; depth++ {
		if depth > r.N()+2 {
			return nil, fmt.Errorf("lowerbound: chain did not terminate within %d steps", r.N()+2)
		}
		lt, err := causality.NewLevelTable(cur, m)
		if err != nil {
			return nil, err
		}
		level := lt.Final(proc)
		a, err := s.Analyze(g, cur)
		if err != nil {
			return nil, err
		}
		attack := a.PAttack[proc]

		// The inductive claim at this step: Pr[D_proc|cur] ≤ ε·level.
		if attack > s.Epsilon()*float64(level)+1e-12 {
			return nil, fmt.Errorf("lowerbound: step %d: Pr[D_%d|R] = %v exceeds ε·L = %v — certificate falsified",
				depth, proc, attack, s.Epsilon()*float64(level))
		}
		clip := causality.Clip(cur, m, proc)
		step := Step{Proc: proc, Run: cur, Level: level, AttackProb: attack, Clipped: clip}

		// Lemma 4.2: the clip is indistinguishable to proc, so the attack
		// probability is unchanged.
		ca, err := s.Analyze(g, clip)
		if err != nil {
			return nil, err
		}
		if diff := abs(ca.PAttack[proc] - attack); diff > 1e-12 {
			return nil, fmt.Errorf("lowerbound: step %d: clipping changed Pr[D_%d] by %v (Lemma 4.2 violated)",
				depth, proc, diff)
		}

		if level == 0 {
			// Base case: validity forces probability 0.
			if attack != 0 {
				return nil, fmt.Errorf("lowerbound: base case: level 0 but Pr[D_%d|R] = %v", proc, attack)
			}
			cert.Steps = append(cert.Steps, step)
			return cert, nil
		}

		// Lemma 5.2: some k has level ≤ level-1 in the clip.
		clt, err := causality.NewLevelTable(clip, m)
		if err != nil {
			return nil, err
		}
		next := graph.ProcID(0)
		for k := 1; k <= m; k++ {
			if clt.Final(graph.ProcID(k)) <= level-1 {
				next = graph.ProcID(k)
				break
			}
		}
		if next == 0 {
			return nil, fmt.Errorf("lowerbound: step %d: no Lemma 5.2 witness below level %d", depth, level)
		}
		// Lemma 2.2: the disagreement gap between proc and next in the
		// clip is at most one unsafety window.
		if gap := ca.PAttack[proc] - ca.PAttack[next]; gap > s.Epsilon()+1e-12 {
			return nil, fmt.Errorf("lowerbound: step %d: attack gap %v exceeds ε (Lemma 2.2 violated)", depth, gap)
		}
		step.Next = next
		cert.Steps = append(cert.Steps, step)
		cur, proc = clip, next
	}
}

// Bound reports the certified conclusion: Pr[D_i|R] ≤ ε·L_i(R), as the
// pair (attack probability, budget) of the chain's first step.
func (c *Certificate) Bound() (attackProb, budget float64) {
	if len(c.Steps) == 0 {
		return 0, 0
	}
	first := c.Steps[0]
	return first.AttackProb, c.Epsilon * float64(first.Level)
}

// String renders the chain compactly, one line per step.
func (c *Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 5.4 certificate (ε=%g):\n", c.Epsilon)
	for idx, st := range c.Steps {
		fmt.Fprintf(&b, "  step %d: proc %d, L=%d, Pr[D]=%.4f ≤ %.4f, |M|=%d → clip |M|=%d",
			idx, st.Proc, st.Level, st.AttackProb, c.Epsilon*float64(st.Level),
			st.Run.NumDeliveries(), st.Clipped.NumDeliveries())
		if st.Next != 0 {
			fmt.Fprintf(&b, ", next proc %d", st.Next)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
