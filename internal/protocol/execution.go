package protocol

// IdenticalTo reports whether two executions are "identical to i" in the
// §2 sense: process i's local executions E_i coincide — same input, same
// per-round receipts, same sent messages, same output. This is the
// semantic side of indistinguishability; Lemma 4.2's clipping gives the
// syntactic criterion, and the test suite checks that the two agree.
//
// Message comparison uses Go equality, which is well-defined because
// every protocol in this repository sends comparable message values.
func (e *Execution) IdenticalTo(o *Execution, i int) bool {
	if o == nil || e.N != o.N || i < 1 || i >= len(e.Locals) || i >= len(o.Locals) {
		return false
	}
	a, b := e.Locals[i], o.Locals[i]
	if a.ID != b.ID || a.Input != b.Input || a.Output != b.Output || len(a.Rounds) != len(b.Rounds) {
		return false
	}
	for r := range a.Rounds {
		ra, rb := a.Rounds[r], b.Rounds[r]
		if len(ra.Received) != len(rb.Received) || len(ra.Sent) != len(rb.Sent) {
			return false
		}
		for k := range ra.Received {
			if ra.Received[k] != rb.Received[k] {
				return false
			}
		}
		for k := range ra.Sent {
			// Delivery fate may legitimately differ between the two runs
			// (the messages sent are part of E_i; their fate is not
			// observable by i), so compare destination and content only.
			if ra.Sent[k].To != rb.Sent[k].To || ra.Sent[k].Msg != rb.Sent[k].Msg {
				return false
			}
		}
	}
	return true
}

// CommCost tallies an execution's message complexity: total send slots,
// non-null packets sent, and non-null packets delivered. The model makes
// every process send every round; packets are where the information is.
type CommCost struct {
	SendSlots        int
	PacketsSent      int
	PacketsDelivered int
}

// CommCost computes the execution's message-complexity tally.
func (e *Execution) CommCost() CommCost {
	var c CommCost
	for i := 1; i < len(e.Locals); i++ {
		for _, round := range e.Locals[i].Rounds {
			for _, s := range round.Sent {
				c.SendSlots++
				if !IsNull(s.Msg) {
					c.PacketsSent++
					if s.Delivered {
						c.PacketsDelivered++
					}
				}
			}
		}
	}
	return c
}

// NumAttacking counts processes with O_i = 1.
func (e *Execution) NumAttacking() int {
	n := 0
	for i := 1; i < len(e.Locals); i++ {
		if e.Locals[i].Output {
			n++
		}
	}
	return n
}
