package protocol

import "testing"

type nullMsg struct{}

func (nullMsg) CAMessage() {}
func (nullMsg) Null() bool { return true }

type loudNull struct{}

func (loudNull) CAMessage() {}
func (loudNull) Null() bool { return false } // marker present but not null

func TestIsNull(t *testing.T) {
	if !IsNull(nullMsg{}) {
		t.Error("null marker not recognized")
	}
	if IsNull(tMsg{V: 1}) {
		t.Error("plain message reported null")
	}
	if IsNull(loudNull{}) {
		t.Error("Null() == false message reported null")
	}
}

func TestCommCost(t *testing.T) {
	e := &Execution{N: 2, Locals: make([]LocalExecution, 3)}
	e.Locals[1] = LocalExecution{
		ID: 1,
		Rounds: []RoundRecord{
			{Sent: []SentRecord{
				{To: 2, Msg: tMsg{V: 1}, Delivered: true},
				{To: 2, Msg: nullMsg{}, Delivered: true},
			}},
			{Sent: []SentRecord{
				{To: 2, Msg: tMsg{V: 2}, Delivered: false},
			}},
		},
	}
	e.Locals[2] = LocalExecution{
		ID: 2,
		Rounds: []RoundRecord{
			{Sent: []SentRecord{{To: 1, Msg: nullMsg{}, Delivered: false}}},
			{},
		},
	}
	c := e.CommCost()
	if c.SendSlots != 4 {
		t.Errorf("SendSlots = %d, want 4", c.SendSlots)
	}
	if c.PacketsSent != 2 {
		t.Errorf("PacketsSent = %d, want 2 (nulls excluded)", c.PacketsSent)
	}
	if c.PacketsDelivered != 1 {
		t.Errorf("PacketsDelivered = %d, want 1", c.PacketsDelivered)
	}
}
