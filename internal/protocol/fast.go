package protocol

import (
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// FastState is the struct-of-arrays execution surface behind the
// zero-alloc trial engines. Where Machine models one process holding its
// own boxed messages, a FastState holds the state of all m processes at
// once in flat arrays and advances them against a run.Set bitset —
// no message values, no per-round slices, no allocation after
// construction.
//
// The state is double-buffered by round parity. The contract engines rely
// on (and the concurrent engine's race freedom depends on):
//
//   - Init writes every process's round-0 state into the parity-0 buffer.
//   - Step(rs, round, i) reads only round-1 parity state (any process)
//     and writes only process i's slot of the round parity buffer. It must
//     fold i's delivered in-neighbors in ascending sender order, matching
//     the sorted Received slices the reference engine feeds Machine.Step.
//   - Output(i) reads process i's slot of the parity-N buffer and must be
//     stable once every process has stepped round N.
//
// A FastState is reusable: Init fully resets it for the next trial. It is
// not safe for concurrent use across trials; within one trial, concurrent
// Step calls for distinct processes in the same round are safe by the
// buffer contract above.
type FastState interface {
	// Init resets the state for a new trial of the run rs, drawing any
	// start-state randomness from bank (bank.Tape(i) is α_i, bit-identical
	// to the tape the reference engine would hand process i).
	Init(rs *run.Set, bank *rng.Bank) error

	// Step computes process i's state after the given round (1-based).
	Step(rs *run.Set, round int, i graph.ProcID) error

	// Output returns O_i(q_i^N) after the final round has stepped.
	Output(i graph.ProcID) bool
}

// FastProtocol is implemented by protocols that provide a FastState in
// addition to the reference Machine implementation. The two must be
// observationally identical — same outputs, same random-tape consumption
// — on every run; the differential suite in internal/sim and internal/mc
// enforces that bit for bit. Engines treat the Machine path as the
// specification and use the fast path only when the protocol offers it.
type FastProtocol interface {
	Protocol

	// NewFastState builds a reusable whole-system state for runs over g
	// with horizon n. Returning an error means the fast path cannot serve
	// this shape (e.g. too many processes) and engines must fall back to
	// the reference path.
	NewFastState(g *graph.G, n int) (FastState, error)
}
