package protocol

import (
	"strings"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

type tMsg struct{ V int }

func (tMsg) CAMessage() {}

func twoProcExecution(outputs [2]bool) *Execution {
	e := &Execution{N: 2, Locals: make([]LocalExecution, 3)}
	for i := 1; i <= 2; i++ {
		e.Locals[i] = LocalExecution{
			ID:     graph.ProcID(i),
			Input:  i == 1,
			Output: outputs[i-1],
			Rounds: []RoundRecord{
				{
					Sent:     []SentRecord{{To: graph.ProcID(3 - i), Msg: tMsg{V: i}, Delivered: true}},
					Received: []Received{{From: graph.ProcID(3 - i), Msg: tMsg{V: 3 - i}}},
				},
				{
					Sent: []SentRecord{{To: graph.ProcID(3 - i), Msg: tMsg{V: i * 10}, Delivered: false}},
				},
			},
		}
	}
	return e
}

func TestOutputsAndOutcome(t *testing.T) {
	e := twoProcExecution([2]bool{true, true})
	outs := e.Outputs()
	if len(outs) != 3 || !outs[1] || !outs[2] {
		t.Errorf("Outputs = %v", outs)
	}
	if e.Outcome() != TotalAttack {
		t.Errorf("Outcome = %v", e.Outcome())
	}
	if e.NumAttacking() != 2 {
		t.Errorf("NumAttacking = %d", e.NumAttacking())
	}
	mixed := twoProcExecution([2]bool{true, false})
	if mixed.Outcome() != PartialAttack || mixed.NumAttacking() != 1 {
		t.Errorf("mixed outcome %v attacking %d", mixed.Outcome(), mixed.NumAttacking())
	}
}

func TestIdenticalTo(t *testing.T) {
	a := twoProcExecution([2]bool{true, true})
	b := twoProcExecution([2]bool{true, true})
	for i := 1; i <= 2; i++ {
		if !a.IdenticalTo(b, i) {
			t.Errorf("identical executions reported different to %d", i)
		}
	}
	// Changing only process 2's output breaks identity to 2, not to 1.
	c := twoProcExecution([2]bool{true, false})
	if !a.IdenticalTo(c, 1) {
		t.Error("process 1's view should be unchanged")
	}
	if a.IdenticalTo(c, 2) {
		t.Error("process 2's output differs; identity to 2 should fail")
	}
	// Changing a received message breaks identity for the receiver.
	d := twoProcExecution([2]bool{true, true})
	d.Locals[1].Rounds[0].Received[0].Msg = tMsg{V: 99}
	if a.IdenticalTo(d, 1) {
		t.Error("received-message change undetected")
	}
	if !a.IdenticalTo(d, 2) {
		t.Error("process 2 unaffected by 1's receipt change")
	}
	// Delivery fate of sends is NOT part of i's view.
	f := twoProcExecution([2]bool{true, true})
	f.Locals[1].Rounds[0].Sent[0].Delivered = false
	if !a.IdenticalTo(f, 1) {
		t.Error("send delivery fate must not affect identity")
	}
	// But sent content is.
	g := twoProcExecution([2]bool{true, true})
	g.Locals[1].Rounds[0].Sent[0].Msg = tMsg{V: 123}
	if a.IdenticalTo(g, 1) {
		t.Error("sent-content change undetected")
	}
	// Degenerate comparisons.
	if a.IdenticalTo(nil, 1) || a.IdenticalTo(b, 0) || a.IdenticalTo(b, 9) {
		t.Error("degenerate IdenticalTo returned true")
	}
	short := &Execution{N: 3, Locals: make([]LocalExecution, 3)}
	if a.IdenticalTo(short, 1) {
		t.Error("different N reported identical")
	}
}

func TestOutcomeString(t *testing.T) {
	if NoAttack.String() != "NA" || TotalAttack.String() != "TA" || PartialAttack.String() != "PA" {
		t.Error("outcome strings wrong")
	}
	if !strings.Contains(Outcome(0).String(), "0") {
		t.Error("zero outcome string wrong")
	}
}

func TestClassifyEmptyAndSingle(t *testing.T) {
	// Empty vector (index 0 only) counts as "all attack" vacuously; the
	// engines never produce it, but Classify must not panic.
	if got := Classify([]bool{false}); got != TotalAttack {
		t.Errorf("vacuous Classify = %v", got)
	}
	if got := Classify([]bool{false, true}); got != TotalAttack {
		t.Errorf("single-attacker Classify = %v", got)
	}
	if got := Classify([]bool{false, false}); got != NoAttack {
		t.Errorf("single-refuser Classify = %v", got)
	}
}

func TestConfigValidateDirect(t *testing.T) {
	g := graph.Pair()
	good := Config{ID: 2, G: g, N: 1, Tape: rng.NewTape(1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := Config{ID: 2, G: g, N: 1}
	if err := bad.Validate(); err == nil {
		t.Error("nil tape accepted")
	}
}
