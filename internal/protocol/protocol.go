// Package protocol defines the §2 protocol model: per-process state
// machines F_i = (start states, transition function δ_i, message function
// σ_i, output O_i), plus execution records and the TA/NA/PA outcome
// classification.
//
// Execution engines live in package sim; concrete protocols (S, A, the
// deterministic baselines) live in internal/core and internal/baseline.
package protocol

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

// Message is one protocol message m_ij^r. Concrete protocols define their
// own message types and tag them with the CAMessage marker; engines treat
// messages as opaque values. The model requires a message on every edge in
// every round — protocols with "nothing to say" send an explicit null
// message type of their own, which receivers ignore.
type Message interface {
	// CAMessage marks a type as a coordinated-attack protocol message.
	CAMessage()
}

// NullMarker is implemented by protocols' explicit null messages — the
// "nothing to say" placeholders the model requires each round. IsNull
// recognizes them for message-complexity accounting.
type NullMarker interface {
	Message
	// Null reports whether the message carries no information.
	Null() bool
}

// IsNull reports whether a message is an explicit null.
func IsNull(m Message) bool {
	n, ok := m.(NullMarker)
	return ok && n.Null()
}

// Received pairs a delivered message with its sender; S_i^r is a slice of
// these, sorted by sender for determinism.
type Received struct {
	From graph.ProcID
	Msg  Message
}

// Config carries everything F_i knows at start: its identity, the graph
// (protocols are designed for a topology), the horizon N, whether the
// input signal arrived in round 0 (selecting start state s_i^0 or s_i^1),
// and the private random tape α_i.
type Config struct {
	ID    graph.ProcID
	G     *graph.G
	N     int
	Input bool
	Tape  *rng.Tape
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.G == nil {
		return fmt.Errorf("protocol: config for %d has nil graph", c.ID)
	}
	if c.ID < 1 || int(c.ID) > c.G.NumVertices() {
		return fmt.Errorf("protocol: id %d not a vertex of %v", c.ID, c.G)
	}
	if c.N < 1 {
		return fmt.Errorf("protocol: config needs N ≥ 1, got %d", c.N)
	}
	if c.Tape == nil {
		return fmt.Errorf("protocol: config for %d has nil tape", c.ID)
	}
	return nil
}

// Machine is one running local protocol F_i. Engines drive it strictly in
// round order: for each round r = 1..N first Send for every neighbor,
// then one Step with the delivered messages; after round N, Output.
type Machine interface {
	// Send returns m_ij^r = σ_i(q_i^{r-1}, to). It must not mutate state:
	// all sends of a round happen "simultaneously" from the same q^{r-1}.
	Send(round int, to graph.ProcID) Message

	// Step applies δ_i: consumes S_i^r (sorted by sender) and moves to
	// q_i^r. It returns an error only on model violations such as random
	// tape exhaustion.
	Step(round int, received []Received) error

	// Output returns O_i(q_i^N); it must be stable once round N has run.
	Output() bool
}

// Protocol is a factory for local machines — the full F = (F_1, ..., F_m).
type Protocol interface {
	// Name identifies the protocol in traces and tables.
	Name() string

	// NewMachine builds F_i in its start state. The machine must draw all
	// randomness from cfg.Tape.
	NewMachine(cfg Config) (Machine, error)
}

// Outcome classifies an execution's output vector.
type Outcome int

const (
	// NoAttack: all generals output 0 (the NA event).
	NoAttack Outcome = iota + 1
	// TotalAttack: all generals output 1 (the TA event).
	TotalAttack
	// PartialAttack: some pair of generals disagrees (the PA event, whose
	// worst-case probability is the unsafety U).
	PartialAttack
)

func (o Outcome) String() string {
	switch o {
	case NoAttack:
		return "NA"
	case TotalAttack:
		return "TA"
	case PartialAttack:
		return "PA"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Classify maps an output vector (index 1..m; index 0 ignored) to its
// outcome.
func Classify(outputs []bool) Outcome {
	any, all := false, true
	for i := 1; i < len(outputs); i++ {
		if outputs[i] {
			any = true
		} else {
			all = false
		}
	}
	switch {
	case all:
		return TotalAttack
	case any:
		return PartialAttack
	default:
		return NoAttack
	}
}

// SentRecord is one sent message, retained by traces.
type SentRecord struct {
	To        graph.ProcID
	Msg       Message
	Delivered bool
}

// RoundRecord is one round of a local execution: what i sent and what it
// received.
type RoundRecord struct {
	Sent     []SentRecord
	Received []Received
}

// LocalExecution is the paper's E_i: the input, the per-round sends and
// receipts, and the output bit of one process.
type LocalExecution struct {
	ID     graph.ProcID
	Input  bool
	Rounds []RoundRecord // index 0 = round 1
	Output bool
}

// Execution is the vector (E_i) plus the output vector.
type Execution struct {
	N      int
	Locals []LocalExecution // index 1..m; index 0 unused
}

// Outputs returns the decision vector O, index 1..m (index 0 unused).
func (e *Execution) Outputs() []bool {
	out := make([]bool, len(e.Locals))
	for i := 1; i < len(e.Locals); i++ {
		out[i] = e.Locals[i].Output
	}
	return out
}

// Outcome classifies the execution as TA, NA, or PA.
func (e *Execution) Outcome() Outcome { return Classify(e.Outputs()) }
