// Package hints is the durable hinted-handoff log behind the cluster's
// active-healing layer: when a replica push fails because the target
// peer is down, the sender queues a hint — "peer P is owed key K" —
// instead of waiting for the next anti-entropy pass, and the peer
// failure detector drains the hints the moment the peer answers a probe
// again.
//
// Hints are tiny on purpose. Results are content-addressed and already
// durable in the sender's local store, so a hint carries only the
// (peer, key) pair; delivery re-reads the body from the store. Losing a
// hint is therefore never a correctness loss — the anti-entropy repair
// loop remains the backstop — which is why the log can shed oldest
// hints under a byte cap rather than refuse writes.
//
// The on-disk format mirrors internal/queue's journal: checksummed
// record lines in sequence-numbered segments, torn-tail-tolerant
// replay, compact-on-open, and degrade-to-memory-only on any write
// error. Line format:
//
//	coordd-hints/v1 <sha256-hex over the JSON> <compact JSON record>\n
package hints

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"coordattack/internal/store"
)

// logVersion prefixes every record line. Unrecognized versions are
// skipped on replay, never misparsed.
const logVersion = "coordd-hints/v1"

// Record ops.
const (
	// OpAdd queues one hint: peer is owed key.
	OpAdd = "add"
	// OpDone tombstones a hint: delivered, or shed under the byte cap.
	OpDone = "done"
)

// Record is one hint-log entry.
type Record struct {
	Op   string `json:"op"`
	Peer string `json:"peer"`
	Key  string `json:"key"`
	// At is the queue wall-clock in unix nanoseconds, preserved across
	// replay so hint-age observations survive a restart.
	At int64 `json:"at,omitempty"`
}

// Options tunes Open.
type Options struct {
	// FS overrides the filesystem; nil means the real disk. Chaos
	// harnesses inject faults here.
	FS store.FS
	// Logf receives one line per degradation, truncation, shed, and
	// compaction event; nil discards them.
	Logf func(format string, args ...any)
	// MaxBytes caps the encoded size of the pending hint set; once an
	// Add would exceed it the oldest pending hints are shed (tombstoned
	// and counted in Stats.Dropped) until the new hint fits. <= 0 means
	// unlimited.
	MaxBytes int64
	// CompactEvery rewrites the log once this many tombstones have
	// accumulated since the last compaction. 0 means 1024.
	CompactEvery int
}

// Stats is a point-in-time snapshot for /metrics and the admin surface.
type Stats struct {
	// Pending is the current queued-hint count across all peers.
	Pending int `json:"pending"`
	// Peers is how many distinct peers have pending hints.
	Peers int `json:"peers"`
	// Adds counts hints ever queued (dedup suppresses re-adds of an
	// already-pending pair); Delivered counts hints cleared by delivery;
	// Dropped counts hints shed under MaxBytes.
	Adds      int64 `json:"adds"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	// Replayed is how many pending hints the log recovered at open.
	Replayed int `json:"replayed"`
	// Truncated counts undecodable lines skipped on replay.
	Truncated int64 `json:"truncated"`
	// Degraded is true once a write error demoted the log to
	// memory-only.
	Degraded bool `json:"degraded"`
}

// hint is one pending entry with its byte-accounting weight.
type hint struct {
	peer, key string
	at        int64
	size      int64 // encoded add-line length, the MaxBytes unit
}

// Log is the hinted-handoff queue. Safe for concurrent use; every
// append is fsynced before it returns. A Log opened with an empty dir
// is memory-only: same API, no durability.
type Log struct {
	dir  string // "" = memory-only
	fs   store.FS
	logf func(format string, args ...any)

	mu           sync.Mutex
	active       store.File
	seq          uint64
	pending      map[string]map[string]*hint // peer → key → hint
	order        []*hint                     // global queue order, oldest first
	bytes        int64                       // encoded size of the pending set
	maxBytes     int64
	doneSince    int
	compactEvery int
	degraded     bool

	adds, delivered, dropped, truncated int64
	replayed                            int
}

// Open opens (or creates) the hint log at dir, replays its segments,
// and compacts them into a fresh one. An empty dir yields a memory-only
// log that never touches the filesystem.
func Open(dir string, opts Options) (*Log, error) {
	fs := opts.FS
	if fs == nil {
		fs = store.DiskFS()
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 1024
	}
	l := &Log{
		dir:          dir,
		fs:           fs,
		logf:         opts.Logf,
		pending:      make(map[string]map[string]*hint),
		maxBytes:     opts.MaxBytes,
		compactEvery: opts.CompactEvery,
	}
	if dir == "" {
		return l, nil
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hints: %w", err)
	}
	segs, err := l.scan()
	if err != nil {
		return nil, err
	}
	l.replayed = len(l.order)
	l.mu.Lock()
	if err := l.compactLocked(); err == nil {
		for _, s := range segs {
			_ = l.fs.Remove(filepath.Join(dir, s))
		}
	}
	l.mu.Unlock()
	return l, nil
}

// scan replays every segment in order, building the pending set, and
// returns the segment filenames it consumed. Stray temp files from a
// crash mid-compaction are swept.
func (l *Log) scan() ([]string, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("hints: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "tmp-") {
			_ = l.fs.Remove(filepath.Join(l.dir, name))
			continue
		}
		if seq, ok := segmentSeq(name); ok {
			segs = append(segs, name)
			if seq > l.seq {
				l.seq = seq
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool {
		sa, _ := segmentSeq(segs[a])
		sb, _ := segmentSeq(segs[b])
		return sa < sb
	})
	for _, name := range segs {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, name))
		if err != nil {
			continue
		}
		l.applySegment(name, data)
	}
	return segs, nil
}

// applySegment replays one segment's lines. Undecodable lines — the
// torn tail of a crash mid-append, or a chaos-injected short write —
// are counted and skipped; every line that checksums is applied.
func (l *Log) applySegment(name string, data []byte) {
	for len(data) > 0 {
		line := data
		if nl := indexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			data = nil // trailing partial line
		}
		if len(line) == 0 {
			continue
		}
		rec, err := decodeLine(line)
		if err != nil {
			l.truncated++
			if l.logf != nil {
				l.logf("hints: log %s: dropped undecodable record: %v", name, err)
			}
			continue
		}
		switch rec.Op {
		case OpAdd:
			l.insertLocked(rec.Peer, rec.Key, rec.At)
		case OpDone:
			l.removeLocked(rec.Peer, rec.Key)
		}
	}
}

// insertLocked adds (peer, key) to the pending set if absent. Returns
// the hint and whether it was freshly inserted.
func (l *Log) insertLocked(peer, key string, at int64) (*hint, bool) {
	byKey := l.pending[peer]
	if byKey == nil {
		byKey = make(map[string]*hint)
		l.pending[peer] = byKey
	}
	if h, ok := byKey[key]; ok {
		return h, false
	}
	h := &hint{peer: peer, key: key, at: at, size: addLineSize(peer, key, at)}
	byKey[key] = h
	l.order = append(l.order, h)
	l.bytes += h.size
	return h, true
}

// removeLocked drops (peer, key) from the pending set if present.
func (l *Log) removeLocked(peer, key string) bool {
	byKey := l.pending[peer]
	h, ok := byKey[key]
	if !ok {
		return false
	}
	delete(byKey, key)
	if len(byKey) == 0 {
		delete(l.pending, peer)
	}
	for i, o := range l.order {
		if o == h {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.bytes -= h.size
	return true
}

// Add queues one hint: peer is owed key's body. Re-adding an already
// pending pair is a free no-op — delivery is idempotent anyway, but the
// log stays minimal. When MaxBytes is set and exceeded, the oldest
// pending hints are shed (tombstoned and counted as dropped) until the
// new hint fits; the newest hint is always kept.
func (l *Log) Add(peer, key string) error {
	now := time.Now().UnixNano()
	l.mu.Lock()
	defer l.mu.Unlock()
	h, fresh := l.insertLocked(peer, key, now)
	if !fresh {
		return nil
	}
	l.adds++
	err := l.appendLocked(&Record{Op: OpAdd, Peer: peer, Key: key, At: h.at})
	// Shed oldest-first past the cap. Shedding appends tombstones (so a
	// replayed log agrees), but never sheds the hint just added: losing
	// the newest to make room for the oldest would invert the queue.
	for l.maxBytes > 0 && l.bytes > l.maxBytes && len(l.order) > 1 {
		oldest := l.order[0]
		if oldest == h {
			break
		}
		l.removeLocked(oldest.peer, oldest.key)
		l.dropped++
		if l.logf != nil {
			l.logf("hints: shed oldest hint (%s ← %.8s) over the %d-byte cap", oldest.peer, oldest.key, l.maxBytes)
		}
		_ = l.appendLocked(&Record{Op: OpDone, Peer: oldest.peer, Key: oldest.key})
		l.noteDoneLocked()
	}
	return err
}

// Delivered tombstones one hint after a successful push (or after the
// body vanished locally and the hint became undeliverable). Clearing a
// pair that is not pending is a no-op.
func (l *Log) Delivered(peer, key string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.removeLocked(peer, key) {
		return nil
	}
	l.delivered++
	err := l.appendLocked(&Record{Op: OpDone, Peer: peer, Key: key})
	l.noteDoneLocked()
	return err
}

// noteDoneLocked triggers a live compaction once a segment's worth of
// tombstones has accumulated, bounding the log by its backlog.
func (l *Log) noteDoneLocked() {
	l.doneSince++
	if l.doneSince < l.compactEvery {
		return
	}
	old := l.activeSegmentPath()
	if err := l.compactLocked(); err == nil && old != "" {
		_ = l.fs.Remove(old)
	}
}

// Pending returns peer's queued keys, oldest first.
func (l *Log) Pending(peer string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	byKey := l.pending[peer]
	if len(byKey) == 0 {
		return nil
	}
	out := make([]string, 0, len(byKey))
	for _, h := range l.order {
		if h.peer == peer {
			out = append(out, h.key)
		}
	}
	return out
}

// PendingFor reports how many hints are queued for peer.
func (l *Log) PendingFor(peer string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending[peer])
}

// Peers returns the peers with pending hints, sorted.
func (l *Log) Peers() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.pending))
	for peer := range l.pending {
		out = append(out, peer)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Pending:   len(l.order),
		Peers:     len(l.pending),
		Adds:      l.adds,
		Delivered: l.delivered,
		Dropped:   l.dropped,
		Replayed:  l.replayed,
		Truncated: l.truncated,
		Degraded:  l.degraded,
	}
}

// Degraded reports whether a write error demoted the log.
func (l *Log) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Close closes the active segment handle. Hints already appended stay
// durable; a closed log refuses nothing — further appends simply demote
// it (the daemon is exiting anyway).
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active != nil {
		l.active.Close()
		l.active = nil
		l.degraded = true
	}
}

// appendLocked writes one fsynced record line to the active segment,
// opening the first segment lazily. Memory-only logs skip the disk.
// Any error demotes the log.
func (l *Log) appendLocked(rec *Record) error {
	if l.dir == "" || l.degraded {
		return nil
	}
	if l.active == nil {
		if err := l.compactLocked(); err != nil {
			return err
		}
	}
	line, err := encodeLine(rec)
	if err != nil {
		return l.demoteLocked(err)
	}
	if _, err := l.active.Write(line); err != nil {
		return l.demoteLocked(err)
	}
	if err := l.active.Sync(); err != nil {
		return l.demoteLocked(err)
	}
	return nil
}

func (l *Log) activeSegmentPath() string {
	if l.active == nil {
		return ""
	}
	return filepath.Join(l.dir, fmt.Sprintf("%08d.wal", l.seq))
}

// compactLocked writes the current pending set into a fresh segment —
// temp file, fsync, rename, dir fsync — and makes it the active append
// target. The caller removes superseded segments on success.
func (l *Log) compactLocked() error {
	if l.dir == "" {
		return nil
	}
	tmp, err := l.fs.CreateTemp(l.dir, "tmp-*")
	if err != nil {
		return l.demoteLocked(err)
	}
	for _, h := range l.order {
		line, err := encodeLine(&Record{Op: OpAdd, Peer: h.peer, Key: h.key, At: h.at})
		if err != nil {
			tmp.Close()
			_ = l.fs.Remove(tmp.Name())
			return l.demoteLocked(err)
		}
		if _, err := tmp.Write(line); err != nil {
			tmp.Close()
			_ = l.fs.Remove(tmp.Name())
			return l.demoteLocked(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = l.fs.Remove(tmp.Name())
		return l.demoteLocked(err)
	}
	next := l.seq + 1
	dest := filepath.Join(l.dir, fmt.Sprintf("%08d.wal", next))
	if err := l.fs.Rename(tmp.Name(), dest); err != nil {
		tmp.Close()
		_ = l.fs.Remove(tmp.Name())
		return l.demoteLocked(err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		tmp.Close()
		return l.demoteLocked(err)
	}
	// The open handle follows the rename: appends land in the new
	// segment file.
	if l.active != nil {
		l.active.Close()
	}
	l.active = tmp
	l.seq = next
	l.doneSince = 0
	return nil
}

// demoteLocked flips the log to memory-only exactly once.
func (l *Log) demoteLocked(cause error) error {
	if !l.degraded {
		l.degraded = true
		if l.logf != nil {
			l.logf("hints: log degraded to memory-only: %v (queued hints lose crash durability until restart)", cause)
		}
	}
	return cause
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// segmentSeq parses "<seq>.wal" names.
func segmentSeq(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// addLineSize is the encoded add-line length of one hint — the unit the
// MaxBytes cap meters.
func addLineSize(peer, key string, at int64) int64 {
	line, err := encodeLine(&Record{Op: OpAdd, Peer: peer, Key: key, At: at})
	if err != nil {
		return int64(len(peer) + len(key))
	}
	return int64(len(line))
}

// encodeLine renders one record line with its binding checksum.
func encodeLine(rec *Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	line := make([]byte, 0, len(logVersion)+1+64+1+len(body)+1)
	line = append(line, logVersion...)
	line = append(line, ' ')
	line = append(line, hex.EncodeToString(sum[:])...)
	line = append(line, ' ')
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses and verifies one record line.
func decodeLine(line []byte) (*Record, error) {
	rest, ok := strings.CutPrefix(string(line), logVersion+" ")
	if !ok {
		return nil, fmt.Errorf("bad version prefix")
	}
	sum, body, ok := strings.Cut(rest, " ")
	if !ok || len(sum) != 64 {
		return nil, fmt.Errorf("malformed checksum field")
	}
	got := sha256.Sum256([]byte(body))
	if hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return nil, err
	}
	if rec.Peer == "" || rec.Key == "" || (rec.Op != OpAdd && rec.Op != OpDone) {
		return nil, fmt.Errorf("invalid record op %q", rec.Op)
	}
	return &rec, nil
}
