package hints

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"coordattack/internal/store"
)

const (
	peerA = "http://127.0.0.1:9001"
	peerB = "http://127.0.0.1:9002"
)

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	t.Cleanup(l.Close)
	return l
}

func TestHintsAddDeliverPending(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	if err := l.Add(peerA, key(1)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := l.Add(peerA, key(2)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := l.Add(peerB, key(1)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Re-adding a pending pair is a dedup no-op.
	if err := l.Add(peerA, key(1)); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	if got := l.Pending(peerA); !reflect.DeepEqual(got, []string{key(1), key(2)}) {
		t.Fatalf("Pending(A) = %v", got)
	}
	if got := l.PendingFor(peerB); got != 1 {
		t.Fatalf("PendingFor(B) = %d", got)
	}
	if got := l.Peers(); !reflect.DeepEqual(got, []string{peerA, peerB}) {
		t.Fatalf("Peers() = %v", got)
	}
	st := l.Stats()
	if st.Adds != 3 || st.Pending != 3 || st.Peers != 2 {
		t.Fatalf("stats after adds: %+v", st)
	}

	if err := l.Delivered(peerA, key(1)); err != nil {
		t.Fatalf("Delivered: %v", err)
	}
	// Clearing an unknown pair is a no-op.
	if err := l.Delivered(peerA, "ffff"); err != nil {
		t.Fatalf("Delivered unknown: %v", err)
	}
	if got := l.Pending(peerA); !reflect.DeepEqual(got, []string{key(2)}) {
		t.Fatalf("Pending(A) after delivery = %v", got)
	}
	st = l.Stats()
	if st.Delivered != 1 || st.Pending != 2 {
		t.Fatalf("stats after delivery: %+v", st)
	}
}

func TestHintsReopenReplays(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Add(peerA, key(i)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := l.Delivered(peerA, key(2)); err != nil {
		t.Fatalf("Delivered: %v", err)
	}
	l.Close() // simulated crash: no compaction beyond what already ran

	re := mustOpen(t, dir, Options{})
	want := []string{key(0), key(1), key(3), key(4)}
	if got := re.Pending(peerA); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed Pending(A) = %v, want %v", got, want)
	}
	if st := re.Stats(); st.Replayed != 4 {
		t.Fatalf("Replayed = %d, want 4", st.Replayed)
	}
	// Compact-on-open leaves exactly one segment and no temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("stray temp file %s after open", e.Name())
		}
		if strings.HasSuffix(e.Name(), ".wal") {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("segments after compact-on-open = %d, want 1", segs)
	}
}

func TestHintsTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Add(peerA, key(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(peerA, key(2)); err != nil {
		t.Fatal(err)
	}
	seg := l.activeSegmentPath()
	l.Close()

	// Chop the last line mid-record: the crash-torn tail.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	if got := re.Pending(peerA); !reflect.DeepEqual(got, []string{key(1)}) {
		t.Fatalf("Pending after torn tail = %v", got)
	}
	if st := re.Stats(); st.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", st.Truncated)
	}
}

func TestHintsMaxBytesShedsOldest(t *testing.T) {
	// Budget for exactly three hints; the fourth Add sheds the oldest.
	// The size sample uses a realistic timestamp so its encoded length
	// matches what Add writes.
	per := addLineSize(peerA, key(0), time.Now().UnixNano())
	l := mustOpen(t, t.TempDir(), Options{MaxBytes: 3 * per})
	for i := 0; i < 4; i++ {
		if err := l.Add(peerA, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Pending(peerA); !reflect.DeepEqual(got, []string{key(1), key(2), key(3)}) {
		t.Fatalf("Pending after shed = %v", got)
	}
	st := l.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	// A cap tighter than one hint still keeps the newest.
	tiny := mustOpen(t, t.TempDir(), Options{MaxBytes: 1})
	if err := tiny.Add(peerA, key(9)); err != nil {
		t.Fatal(err)
	}
	if got := tiny.PendingFor(peerA); got != 1 {
		t.Fatalf("tiny cap kept %d hints, want the newest", got)
	}
}

func TestHintsShedSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	per := addLineSize(peerA, key(0), time.Now().UnixNano())
	l := mustOpen(t, dir, Options{MaxBytes: 2 * per})
	for i := 0; i < 3; i++ {
		if err := l.Add(peerA, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// The shed tombstone was journaled: a replay agrees with the
	// in-memory state, it does not resurrect the dropped hint.
	re := mustOpen(t, dir, Options{})
	if got := re.Pending(peerA); !reflect.DeepEqual(got, []string{key(1), key(2)}) {
		t.Fatalf("replayed Pending after shed = %v", got)
	}
}

func TestHintsMemoryOnly(t *testing.T) {
	l := mustOpen(t, "", Options{})
	if err := l.Add(peerA, key(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Delivered(peerA, key(1)); err != nil {
		t.Fatal(err)
	}
	if l.Degraded() {
		t.Fatal("memory-only log reported degraded")
	}
	if st := l.Stats(); st.Adds != 1 || st.Delivered != 1 || st.Pending != 0 {
		t.Fatalf("memory-only stats: %+v", st)
	}
}

func TestHintsCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{CompactEvery: 8})
	for i := 0; i < 40; i++ {
		if err := l.Add(peerA, key(i)); err != nil {
			t.Fatal(err)
		}
		if err := l.Delivered(peerA, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segments after live compaction = %v, want 1", segs)
	}
	data, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// The surviving segment holds only post-compaction appends, far
	// fewer than the 80 records written in total.
	if lines := strings.Count(string(data), "\n"); lines >= 80 {
		t.Fatalf("compaction never bounded the log: %d lines", lines)
	}
}

// flakyFS delegates to the real disk but fails every File.Sync after an
// armed trip point, driving the degrade path. Defined locally — the
// chaos package imports hints for its soak, so hints tests cannot
// import chaos back.
type flakyFS struct {
	store.FS
	fail bool
}

type flakyFile struct {
	store.File
	fs *flakyFS
}

func (f *flakyFS) CreateTemp(dir, pattern string) (store.File, error) {
	file, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

func (f *flakyFile) Sync() error {
	if f.fs.fail {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func TestHintsDegradeOnWriteError(t *testing.T) {
	fs := &flakyFS{FS: store.DiskFS()}
	var logged []string
	l := mustOpen(t, t.TempDir(), Options{
		FS:   fs,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	if err := l.Add(peerA, key(1)); err != nil {
		t.Fatalf("healthy Add: %v", err)
	}
	fs.fail = true
	if err := l.Add(peerA, key(2)); err == nil {
		t.Fatal("Add over failing fsync returned nil error")
	}
	if !l.Degraded() {
		t.Fatal("write error did not demote the log")
	}
	// Demoted logs keep working in memory and do not re-log.
	n := len(logged)
	if err := l.Add(peerA, key(3)); err != nil {
		t.Fatalf("memory-only Add after demotion: %v", err)
	}
	if len(logged) != n {
		t.Fatalf("demotion logged more than once: %v", logged)
	}
	if got := l.PendingFor(peerA); got != 3 {
		t.Fatalf("pending after demotion = %d, want 3", got)
	}
	if n == 0 || !strings.Contains(logged[0], "degraded") {
		t.Fatalf("missing degradation log line: %v", logged)
	}
}

func TestHintsRecordRoundTrip(t *testing.T) {
	rec := &Record{Op: OpAdd, Peer: peerA, Key: key(7), At: 42}
	line, err := encodeLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeLine(line[:len(line)-1]) // strip trailing newline
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip = %+v, want %+v", got, rec)
	}
	// Flipping one body byte breaks the checksum.
	corrupt := append([]byte(nil), line[:len(line)-1]...)
	corrupt[len(corrupt)-2] ^= 1
	if _, err := decodeLine(corrupt); err == nil {
		t.Fatal("corrupted line decoded cleanly")
	}
}
