package cliutil

import (
	"strings"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
)

func TestParseGraph(t *testing.T) {
	tests := []struct {
		spec string
		m, e int
	}{
		{"pair", 2, 1},
		{"k2", 2, 1},
		{"complete:4", 4, 6},
		{"ring:5", 5, 5},
		{"line:4", 4, 3},
		{"star:6", 6, 5},
		{"grid:2x3", 6, 7},
		{"hypercube:3", 8, 12},
		{"cube:2", 4, 4},
		{"tree:2", 7, 6},
		{"binarytree:1", 3, 2},
		{"torus:3x3", 9, 18},
		{"wheel:5", 5, 8},
		{" Ring:5 ", 5, 5}, // trimmed, case-insensitive
	}
	for _, tc := range tests {
		g, err := ParseGraph(tc.spec, 1)
		if err != nil {
			t.Errorf("ParseGraph(%q): %v", tc.spec, err)
			continue
		}
		if g.NumVertices() != tc.m || g.NumEdges() != tc.e {
			t.Errorf("ParseGraph(%q) = m=%d e=%d, want m=%d e=%d",
				tc.spec, g.NumVertices(), g.NumEdges(), tc.m, tc.e)
		}
	}
	if g, err := ParseGraph("random:6:0.5", 7); err != nil || !g.Connected() {
		t.Errorf("random graph: %v", err)
	}
	for _, bad := range []string{"", "blah", "ring", "ring:x", "grid:2", "grid:ax2", "grid:2xa",
		"complete:x", "line:x", "star:x", "cube:x", "random:6", "random:x:0.5", "random:6:x",
		"tree:x", "torus:3", "torus:ax3", "torus:3xa", "wheel:x"} {
		if _, err := ParseGraph(bad, 1); err == nil {
			t.Errorf("ParseGraph(%q) succeeded", bad)
		}
	}
}

func TestParseInputs(t *testing.T) {
	g := graph.Pair()
	all, err := ParseInputs("all", g)
	if err != nil || len(all) != 2 {
		t.Errorf("all: %v %v", all, err)
	}
	empty, err := ParseInputs("", g)
	if err != nil || len(empty) != 2 {
		t.Errorf("default: %v %v", empty, err)
	}
	none, err := ParseInputs("none", g)
	if err != nil || len(none) != 0 {
		t.Errorf("none: %v %v", none, err)
	}
	some, err := ParseInputs("1", g)
	if err != nil || len(some) != 1 || some[0] != 1 {
		t.Errorf("1: %v %v", some, err)
	}
	pairList, err := ParseInputs("1, 2", g)
	if err != nil || len(pairList) != 2 {
		t.Errorf("1,2: %v %v", pairList, err)
	}
	for _, bad := range []string{"0", "3", "x"} {
		if _, err := ParseInputs(bad, g); err == nil {
			t.Errorf("ParseInputs(%q) succeeded", bad)
		}
	}
}

func TestParseRun(t *testing.T) {
	g := graph.Pair()
	inputs := []graph.ProcID{1, 2}
	good, err := ParseRun("good", g, 4, inputs, 1)
	if err != nil || good.NumDeliveries() != 8 {
		t.Errorf("good: %v %v", good, err)
	}
	def, err := ParseRun("", g, 4, inputs, 1)
	if err != nil || !def.Equal(good) {
		t.Errorf("default spec is not good run: %v", err)
	}
	silent, err := ParseRun("silent", g, 4, inputs, 1)
	if err != nil || silent.NumDeliveries() != 0 {
		t.Errorf("silent: %v %v", silent, err)
	}
	cut, err := ParseRun("cut:3", g, 4, inputs, 1)
	if err != nil || cut.Delivered(1, 2, 3) || !cut.Delivered(1, 2, 2) {
		t.Errorf("cut: %v %v", cut, err)
	}
	prefix, err := ParseRun("prefix:2", g, 4, inputs, 1)
	if err != nil || prefix.NumDeliveries() != 4 {
		t.Errorf("prefix: %v %v", prefix, err)
	}
	drop, err := ParseRun("drop:1-2@2", g, 4, inputs, 1)
	if err != nil || drop.Delivered(1, 2, 2) || !drop.Delivered(2, 1, 2) {
		t.Errorf("drop: %v %v", drop, err)
	}
	tree, err := ParseRun("tree", g, 4, inputs, 1)
	if err != nil || !tree.HasInput(1) || tree.HasInput(2) {
		t.Errorf("tree: %v %v", tree, err)
	}
	loss0, err := ParseRun("loss:0", g, 4, inputs, 1)
	if err != nil || loss0.NumDeliveries() != 8 {
		t.Errorf("loss:0: %v %v", loss0, err)
	}
	custom, err := ParseRun("custom:N=4;I=1;M=1t2r2,2t1r3", g, 4, inputs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !custom.HasInput(1) || custom.HasInput(2) || !custom.Delivered(1, 2, 2) || custom.NumDeliveries() != 2 {
		t.Errorf("custom run wrong: %v", custom)
	}
	for _, bad := range []string{"bogus", "cut:x", "prefix:x", "drop:12@2", "drop:1-2", "drop:x-2@2",
		"drop:1-x@2", "drop:1-2@x", "loss:x", "loss:2",
		"custom:", "custom:N=4;I=;M=1t3r1" /* non-edge */} {
		if _, err := ParseRun(bad, g, 4, inputs, 1); err == nil {
			t.Errorf("ParseRun(%q) succeeded", bad)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	s, err := ParseProtocol("s:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if sp, ok := s.(*core.S); !ok || sp.Epsilon() != 0.1 || sp.Slack() != 0 {
		t.Errorf("s:0.1 = %#v", s)
	}
	slack, err := ParseProtocol("s+2:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if sp, ok := slack.(*core.S); !ok || sp.Slack() != 2 {
		t.Errorf("s+2:0.25 = %#v", slack)
	}
	a, err := ParseProtocol("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(baseline.A); !ok {
		t.Errorf("a = %#v", a)
	}
	axk, err := ParseProtocol("axk:3:any")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := axk.(*baseline.RepeatedA); !ok || p.K() != 3 || p.Mode() != baseline.CombineAny {
		t.Errorf("axk = %#v", axk)
	}
	if _, err := ParseProtocol("detfullinfo"); err != nil {
		t.Error(err)
	}
	thr, err := ParseProtocol("detthreshold:1/2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(thr.Name(), "1/2") {
		t.Errorf("threshold name %q", thr.Name())
	}
	for _, bad := range []string{"", "zzz", "s:x", "s:-1", "s+x:0.1", "s+1:x",
		"axk:3", "axk:x:all", "axk:3:maybe", "detthreshold:12", "detthreshold:x/2", "detthreshold:1/x"} {
		if _, err := ParseProtocol(bad); err == nil {
			t.Errorf("ParseProtocol(%q) succeeded", bad)
		}
	}
}
