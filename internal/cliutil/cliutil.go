// Package cliutil parses the small spec languages the command-line tools
// share: graph specs ("pair", "ring:6", "grid:3x4"), run specs ("good",
// "cut:4", "tree", "loss:0.1", "silent"), input specs ("all", "1", "1,3"),
// and protocol specs ("s:0.1", "s+1:0.1", "a", "axk:4:all",
// "detfullinfo", "detthreshold:1/2").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// ParseGraph builds a graph from a spec:
//
//	pair | complete:M | ring:M | line:M | star:M | grid:RxC |
//	hypercube:D | random:M:P (connected, edge prob P, seeded)
func ParseGraph(spec string, seed uint64) (*graph.G, error) {
	name, args, _ := strings.Cut(strings.ToLower(strings.TrimSpace(spec)), ":")
	switch name {
	case "pair", "k2":
		return graph.Pair(), nil
	case "complete":
		m, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: complete:M needs integer M: %w", err)
		}
		return graph.Complete(m)
	case "ring":
		m, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: ring:M needs integer M: %w", err)
		}
		return graph.Ring(m)
	case "line":
		m, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: line:M needs integer M: %w", err)
		}
		return graph.Line(m)
	case "star":
		m, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: star:M needs integer M: %w", err)
		}
		return graph.Star(m)
	case "grid":
		r, c, found := strings.Cut(args, "x")
		if !found {
			return nil, fmt.Errorf("cliutil: grid spec needs RxC, got %q", args)
		}
		rows, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("cliutil: grid rows: %w", err)
		}
		cols, err := strconv.Atoi(c)
		if err != nil {
			return nil, fmt.Errorf("cliutil: grid cols: %w", err)
		}
		return graph.Grid(rows, cols)
	case "hypercube", "cube":
		d, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: hypercube:D needs integer D: %w", err)
		}
		return graph.Hypercube(d)
	case "tree", "binarytree":
		d, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: tree:D needs integer depth D: %w", err)
		}
		return graph.BinaryTree(d)
	case "torus":
		r, c, found := strings.Cut(args, "x")
		if !found {
			return nil, fmt.Errorf("cliutil: torus spec needs RxC, got %q", args)
		}
		rows, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("cliutil: torus rows: %w", err)
		}
		cols, err := strconv.Atoi(c)
		if err != nil {
			return nil, fmt.Errorf("cliutil: torus cols: %w", err)
		}
		return graph.Torus(rows, cols)
	case "wheel":
		m, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: wheel:M needs integer M: %w", err)
		}
		return graph.Wheel(m)
	case "random":
		mRaw, pRaw, found := strings.Cut(args, ":")
		if !found {
			return nil, fmt.Errorf("cliutil: random spec needs M:P, got %q", args)
		}
		m, err := strconv.Atoi(mRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: random M: %w", err)
		}
		p, err := strconv.ParseFloat(pRaw, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: random P: %w", err)
		}
		return graph.RandomConnected(m, p, rng.NewTape(seed))
	default:
		return nil, fmt.Errorf("cliutil: unknown graph spec %q", spec)
	}
}

// ParseInputs parses an input spec: "all", "none", or a comma-separated
// vertex list like "1,3".
func ParseInputs(spec string, g *graph.G) ([]graph.ProcID, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "all", "":
		return g.Vertices(), nil
	case "none":
		return nil, nil
	}
	var out []graph.ProcID
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cliutil: input %q: %w", part, err)
		}
		if v < 1 || v > g.NumVertices() {
			return nil, fmt.Errorf("cliutil: input %d not a vertex of %v", v, g)
		}
		out = append(out, graph.ProcID(v))
	}
	return out, nil
}

// ParseRun builds a run over n rounds from a spec, with inputs applied:
//
//	good | silent | cut:R | prefix:K | drop:F-T@R | tree | loss:P |
//	custom:N=<n>;I=<list>;M=<f>t<t>r<r>,...
//
// The custom form is run.Format's serialization; it carries its own N
// and inputs, overriding the surrounding flags.
func ParseRun(spec string, g *graph.G, n int, inputs []graph.ProcID, seed uint64) (*run.Run, error) {
	name, args, _ := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.ToLower(name)
	switch name {
	case "custom":
		r, err := run.Parse(args)
		if err != nil {
			return nil, err
		}
		if err := r.Validate(g); err != nil {
			return nil, err
		}
		return r, nil
	case "good", "":
		return run.Good(g, n, inputs...)
	case "silent":
		return run.Silent(n, inputs...)
	case "cut":
		round, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: cut:R needs integer R: %w", err)
		}
		good, err := run.Good(g, n, inputs...)
		if err != nil {
			return nil, err
		}
		return run.CutAt(good, round), nil
	case "prefix":
		k, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("cliutil: prefix:K needs integer K: %w", err)
		}
		good, err := run.Good(g, n, inputs...)
		if err != nil {
			return nil, err
		}
		return run.Prefix(good, k), nil
	case "drop":
		// drop:F-T@R — good run minus the single delivery F→T in round R.
		pair, roundRaw, found := strings.Cut(args, "@")
		if !found {
			return nil, fmt.Errorf("cliutil: drop spec needs F-T@R, got %q", args)
		}
		fRaw, tRaw, found := strings.Cut(pair, "-")
		if !found {
			return nil, fmt.Errorf("cliutil: drop spec needs F-T@R, got %q", args)
		}
		f, err := strconv.Atoi(fRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: drop sender: %w", err)
		}
		to, err := strconv.Atoi(tRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: drop receiver: %w", err)
		}
		round, err := strconv.Atoi(roundRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: drop round: %w", err)
		}
		good, err := run.Good(g, n, inputs...)
		if err != nil {
			return nil, err
		}
		return good.Drop(graph.ProcID(f), graph.ProcID(to), round), nil
	case "tree":
		return run.Tree(g, n, 1)
	case "loss":
		p, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: loss:P needs probability P: %w", err)
		}
		return run.RandomLoss(g, n, p, rng.NewTape(seed), inputs...)
	default:
		return nil, fmt.Errorf("cliutil: unknown run spec %q", spec)
	}
}

// ParseProtocol builds a protocol from a spec:
//
//	s:EPS | s+K:EPS | salt:EPS (footnote-1 variant S′) | a |
//	axk:K:MODE | detfullinfo | detthreshold:N/D
func ParseProtocol(spec string) (protocol.Protocol, error) {
	name, args, _ := strings.Cut(strings.ToLower(strings.TrimSpace(spec)), ":")
	switch {
	case name == "salt":
		eps, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: salt:EPS needs ε: %w", err)
		}
		return core.NewSAltValidity(eps)
	case name == "s":
		eps, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: s:EPS needs ε: %w", err)
		}
		return core.NewS(eps)
	case strings.HasPrefix(name, "s+"):
		slack, err := strconv.Atoi(name[2:])
		if err != nil {
			return nil, fmt.Errorf("cliutil: s+K slack: %w", err)
		}
		eps, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: s+K:EPS needs ε: %w", err)
		}
		return core.NewSWithSlack(eps, slack)
	case name == "a":
		return baseline.NewA(), nil
	case name == "axk":
		kRaw, modeRaw, found := strings.Cut(args, ":")
		if !found {
			return nil, fmt.Errorf("cliutil: axk spec needs K:MODE, got %q", args)
		}
		k, err := strconv.Atoi(kRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: axk K: %w", err)
		}
		var mode baseline.CombineMode
		switch modeRaw {
		case "all":
			mode = baseline.CombineAll
		case "any":
			mode = baseline.CombineAny
		default:
			return nil, fmt.Errorf("cliutil: axk mode %q not all/any", modeRaw)
		}
		return baseline.NewRepeatedA(k, mode)
	case name == "detfullinfo":
		return baseline.NewDetFullInfo(), nil
	case name == "detthreshold":
		nRaw, dRaw, found := strings.Cut(args, "/")
		if !found {
			return nil, fmt.Errorf("cliutil: detthreshold needs N/D, got %q", args)
		}
		num, err := strconv.Atoi(nRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: detthreshold numerator: %w", err)
		}
		den, err := strconv.Atoi(dRaw)
		if err != nil {
			return nil, fmt.Errorf("cliutil: detthreshold denominator: %w", err)
		}
		return baseline.NewDetThreshold(num, den)
	default:
		return nil, fmt.Errorf("cliutil: unknown protocol spec %q", spec)
	}
}
