package core

import (
	"math"
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestFireDistValidation(t *testing.T) {
	if _, err := UniformFire(0); err == nil {
		t.Error("uniform ε=0 accepted")
	}
	if _, err := GeometricFire(0); err == nil {
		t.Error("geometric q=0 accepted")
	}
	if _, err := GeometricFire(1); err == nil {
		t.Error("geometric q=1 accepted")
	}
	if _, err := PowerFire(0.1, 0); err == nil {
		t.Error("power α=0 accepted")
	}
	if _, err := PowerFire(2, 1); err == nil {
		t.Error("power ε=2 accepted")
	}
	if _, err := NewSFire(FireDist{}); err == nil {
		t.Error("empty dist accepted")
	}
	bad := FireDist{
		Name:     "bad",
		CDF:      func(x float64) float64 { return 0.5 },
		Quantile: func(u float64) float64 { return 1 },
	}
	if _, err := NewSFire(bad); err == nil {
		t.Error("F(0) ≠ 0 accepted")
	}
}

func TestUniformFireMatchesS(t *testing.T) {
	// S[uniform(ε)] must behave exactly like NewS(ε): same rfire given
	// the same tape, same outputs on every run.
	eps := 0.2
	dist, err := UniformFire(eps)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSFire(dist)
	if err != nil {
		t.Fatal(err)
	}
	s := MustS(eps)
	g := graph.Pair()
	tape := rng.NewTape(4)
	for trial := 0; trial < 40; trial++ {
		r, err := run.RandomSubset(g, 5, tape)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sim.Outputs(s, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Outputs(sf, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("S and S[uniform] diverge on %v", r)
			}
		}
	}
}

func TestWindowSup(t *testing.T) {
	uni, err := UniformFire(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := uni.WindowSup(20); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("uniform window sup = %v, want ε", got)
	}
	geo, err := GeometricFire(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := geo.WindowSup(20); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("geometric window sup = %v, want 1-q = 0.2", got)
	}
}

func TestGeometricQuantileConsistent(t *testing.T) {
	geo, err := GeometricFire(0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.01, 0.3, 0.5, 0.9, 0.999} {
		x := geo.Quantile(u)
		if x < 1 || x != math.Floor(x) {
			t.Errorf("quantile(%v) = %v not a positive integer", u, x)
		}
		if geo.CDF(x) < u-1e-12 {
			t.Errorf("F(quantile(%v)) = %v < u", u, geo.CDF(x))
		}
		if x > 1 && geo.CDF(x-1) >= u {
			t.Errorf("quantile(%v) = %v not minimal", u, x)
		}
	}
}

func TestFireLivenessMatchesCDF(t *testing.T) {
	// Measured liveness of S[F] on a run with ML(R) = ml equals F(ml),
	// for a non-uniform F.
	geo, err := GeometricFire(0.75)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSFire(geo)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Pair()
	good, err := run.Good(g, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		r := run.Prefix(good, k)
		mlTab, err := causalityModMin(r)
		if err != nil {
			t.Fatal(err)
		}
		want := sf.LivenessAt(mlTab)
		stream := rng.NewStream(uint64(k))
		hits := 0
		const trials = 5000
		for trial := 0; trial < trials; trial++ {
			outs, err := sim.Outputs(sf, g, r, sim.StreamTapes(stream, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if outs[1] && outs[2] {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.025 {
			t.Errorf("prefix %d (ML=%d): measured %v, want F(ML)=%v", k, mlTab, got, want)
		}
	}
}

func TestUniformIsMinimaxOptimal(t *testing.T) {
	// Theorem 5.4 through the distribution lens: for every distribution,
	// F(ml)/U_s ≤ ml at every level — and uniform achieves equality for
	// all ml ≤ 1/ε simultaneously; the alternatives waste ratio at some
	// level.
	const maxML = 10
	uni, err := UniformFire(0.1)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := GeometricFire(0.9)
	if err != nil {
		t.Fatal(err)
	}
	front, err := PowerFire(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PowerFire(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []FireDist{uni, geo, front, back} {
		u := d.WindowSup(maxML)
		if u <= 0 {
			t.Fatalf("%s: zero window sup", d.Name)
		}
		for ml := 1; ml <= maxML; ml++ {
			ratio := d.CDF(float64(ml)) / u
			if ratio > float64(ml)+1e-9 {
				t.Errorf("%s: ratio %v at ML=%d beats the Theorem 5.4 frontier", d.Name, ratio, ml)
			}
		}
	}
	// Uniform: equality everywhere in range.
	u := uni.WindowSup(maxML)
	for ml := 1; ml <= maxML; ml++ {
		if ratio := uni.CDF(float64(ml)) / u; math.Abs(ratio-float64(ml)) > 1e-9 {
			t.Errorf("uniform ratio %v at ML=%d, want exactly %d", ratio, ml, ml)
		}
	}
	// Each alternative falls strictly short somewhere.
	for _, d := range []FireDist{geo, front, back} {
		u := d.WindowSup(maxML)
		short := false
		for ml := 1; ml <= maxML; ml++ {
			if d.CDF(float64(ml))/u < float64(ml)-1e-9 {
				short = true
			}
		}
		if !short {
			t.Errorf("%s: never falls short of the frontier — uniform would not be uniquely optimal", d.Name)
		}
	}
}

func causalityModMin(r *run.Run) (int, error) {
	return causality.RunModLevel(r, 2)
}
