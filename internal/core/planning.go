package core

import (
	"fmt"
	"math"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// UsualCase checks the Appendix A "usual case assumption" under which the
// second lower bound (Theorem A.1) holds: G connected with diameter at
// most N, and ε < 0.5. The paper notes these conditions exclude only
// parameter settings with absurdly small liveness or absurdly large
// permitted unsafety.
func UsualCase(g *graph.G, n int, epsilon float64) error {
	if !g.Connected() {
		return fmt.Errorf("core: usual case needs a connected graph, got %v", g)
	}
	if d := g.Diameter(); d > n {
		return fmt.Errorf("core: usual case needs diameter ≤ N, got diameter %d > N %d", d, n)
	}
	if epsilon >= 0.5 || epsilon <= 0 || math.IsNaN(epsilon) {
		return fmt.Errorf("core: usual case needs 0 < ε < 0.5, got %v", epsilon)
	}
	return nil
}

// Plan is a deployment recommendation derived from the paper's exact
// formulas: the parameters under which Protocol S reaches a liveness
// target on the fully reliable run.
type Plan struct {
	Epsilon  float64 // required agreement parameter
	Rounds   int     // horizon N
	GoodML   int     // ML(R_good) at that horizon
	Liveness float64 // min(1, ε·GoodML) — meets or exceeds the target
}

// RecommendEpsilon returns the smallest ε for which Protocol S reaches
// the liveness target on the good run of (g, n) with all generals
// signaled — the paper's tradeoff, solved for ε: the price in
// disagreement risk of a given deadline.
func RecommendEpsilon(g *graph.G, n int, target float64) (*Plan, error) {
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return nil, fmt.Errorf("core: liveness target %v outside (0, 1]", target)
	}
	ml, err := goodRunML(g, n)
	if err != nil {
		return nil, err
	}
	if ml < 1 {
		return nil, fmt.Errorf("core: good run of (m=%d, N=%d) has ML = %d; no ε can reach liveness %v",
			g.NumVertices(), n, ml, target)
	}
	eps := target / float64(ml)
	if eps > 1 {
		eps = 1
	}
	live := LivenessExact(eps, ml)
	if live < target-1e-12 {
		return nil, fmt.Errorf("core: even ε = 1 reaches only liveness %v < target %v at N = %d", live, target, n)
	}
	return &Plan{Epsilon: eps, Rounds: n, GoodML: ml, Liveness: live}, nil
}

// RecommendRounds returns the smallest horizon N ≤ maxN for which
// Protocol S at the given ε reaches the liveness target on the good run —
// the tradeoff solved for the deadline: the price in rounds of a given
// disagreement budget.
func RecommendRounds(g *graph.G, epsilon, target float64, maxN int) (*Plan, error) {
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("core: epsilon %v outside (0, 1]", epsilon)
	}
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return nil, fmt.Errorf("core: liveness target %v outside (0, 1]", target)
	}
	if maxN < 1 {
		return nil, fmt.Errorf("core: maxN must be positive, got %d", maxN)
	}
	// The good run of n+1 rounds extends that of n, so ML(R_good) — and
	// with it the liveness — is monotone in n: binary search applies.
	reach := func(n int) (int, float64, error) {
		ml, err := goodRunML(g, n)
		if err != nil {
			return 0, 0, err
		}
		return ml, LivenessExact(epsilon, ml), nil
	}
	ml, live, err := reach(maxN)
	if err != nil {
		return nil, err
	}
	if live < target {
		return nil, fmt.Errorf("core: liveness %v unreachable within %d rounds at ε = %v (Theorem 5.4 in action)",
			target, maxN, epsilon)
	}
	lo, hi := 1, maxN
	for lo < hi {
		mid := (lo + hi) / 2
		_, midLive, err := reach(mid)
		if err != nil {
			return nil, err
		}
		if midLive >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	ml, live, err = reach(lo)
	if err != nil {
		return nil, err
	}
	return &Plan{Epsilon: epsilon, Rounds: lo, GoodML: ml, Liveness: live}, nil
}

func goodRunML(g *graph.G, n int) (int, error) {
	good, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		return 0, err
	}
	return causality.RunModLevel(good, g.NumVertices())
}
