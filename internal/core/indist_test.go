package core

import (
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestClipSemanticIndistinguishability(t *testing.T) {
	// Lemma 4.2's semantic content, end to end: for any run R and
	// process i, executing Protocol S on R and on Clip_i(R) with the
	// same tapes yields executions identical to i — same receipts, same
	// sends, same output — even though the clipped run may drop most of
	// the message pattern.
	s := MustS(0.3)
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Ring(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Complete(3); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		m := g.NumVertices()
		runTape := rng.NewTape(uint64(900 + m))
		for trial := 0; trial < 60; trial++ {
			r, err := run.RandomSubset(g, 4, runTape)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= m; i++ {
				pi := graph.ProcID(i)
				clip := causality.Clip(r, m, pi)
				// The clip may drop inputs; executions start from the
				// clipped run's own input set, exactly as Lemma 4.2
				// treats (v₀, j, 0) tuples as part of R.
				tapes := sim.SeedTapes(uint64(trial))
				full, err := sim.Execute(s, g, r, tapes)
				if err != nil {
					t.Fatal(err)
				}
				clipped, err := sim.Execute(s, g, clip, tapes)
				if err != nil {
					t.Fatal(err)
				}
				if !full.IdenticalTo(clipped, i) {
					t.Fatalf("%v: execution on R and Clip_%d(R) differ to %d\nR    = %v\nclip = %v",
						g, i, i, r, clip)
				}
			}
		}
	}
}

func TestIndistinguishableRunsEqualDecisions(t *testing.T) {
	// Lemma 2.1 in executable form: if R ≡ᵢ R̃ (equal clips), then for
	// every tape process i's decision is the same in both runs — so
	// Pr[D_i|R] = Pr[D_i|R̃] trivially.
	s := MustS(0.25)
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	runTape := rng.NewTape(17)
	pairsChecked := 0
	for trial := 0; trial < 150 && pairsChecked < 40; trial++ {
		r1, err := run.RandomSubset(g, 3, runTape)
		if err != nil {
			t.Fatal(err)
		}
		// R̃ = Clip_i(R) ∪ (noise invisible to i): add a delivery that
		// does not flow to i by putting it in the last round between the
		// other two processes.
		for i := 1; i <= 3; i++ {
			pi := graph.ProcID(i)
			r2 := causality.Clip(r1, 3, pi)
			others := make([]graph.ProcID, 0, 2)
			for j := 1; j <= 3; j++ {
				if j != i {
					others = append(others, graph.ProcID(j))
				}
			}
			r2b := r2.Clone()
			if err := r2b.Deliver(others[0], others[1], r2.N()); err != nil {
				t.Fatal(err)
			}
			if !causality.IndistinguishableTo(r1, r2b, 3, pi) {
				continue // the added tuple happened to flow to i already
			}
			pairsChecked++
			for rep := 0; rep < 10; rep++ {
				tapes := sim.SeedTapes(uint64(trial*100 + rep))
				o1, err := sim.Outputs(s, g, r1, tapes)
				if err != nil {
					t.Fatal(err)
				}
				o2, err := sim.Outputs(s, g, r2b, tapes)
				if err != nil {
					t.Fatal(err)
				}
				if o1[i] != o2[i] {
					t.Fatalf("indistinguishable runs gave %d different decisions: %v vs %v",
						i, r1, r2b)
				}
			}
		}
	}
	if pairsChecked < 20 {
		t.Fatalf("only %d indistinguishable pairs exercised; test too weak", pairsChecked)
	}
}
