package core

import (
	"fmt"
	"math"

	"coordattack/internal/protocol"
)

// FireDist is a distribution for the rfire threshold, the one free design
// choice inside Protocol S. The paper draws rfire uniform on (0, 1/ε];
// this type lets experiment T19 ablate that choice. Counts are integers,
// so all that matters is the CDF at integer points: a protocol using
// distribution F has
//
//	Pr[D_i|R] = F(ML_i(R)) for ML_i ≥ 1,
//	U_s       = max_c [ F(c+1) − F(c) ]   (the widest one-level window),
//	L(S_F, R) = F(ML(R)).
//
// Theorem 5.4 then says F(ml)/U_s ≤ ml for every ml — with equality for
// all ml in range only when every window has equal mass, i.e. the uniform
// distribution. Uniform rfire is not a convenience: it is the unique
// minimax choice.
type FireDist struct {
	// Name labels the distribution in tables.
	Name string
	// CDF is F(x) = Pr[rfire ≤ x]; nondecreasing, F(0) = 0.
	CDF func(x float64) float64
	// Quantile maps u ∈ (0, 1] to a threshold with F(Quantile(u)) ≥ u;
	// used to draw rfire from a uniform tape value.
	Quantile func(u float64) float64
}

// UniformFire is the paper's choice: rfire uniform on (0, 1/ε].
func UniformFire(epsilon float64) (FireDist, error) {
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return FireDist{}, fmt.Errorf("core: epsilon %v outside (0,1]", epsilon)
	}
	return FireDist{
		Name:     fmt.Sprintf("uniform(0,%g]", 1/epsilon),
		CDF:      func(x float64) float64 { return clamp01(epsilon * x) },
		Quantile: func(u float64) float64 { return u / epsilon },
	}, nil
}

// GeometricFire draws rfire geometric on {1, 2, ...} with continuation
// probability q: Pr[rfire = k] = (1-q)·q^(k-1). Front-loaded: high
// liveness at low levels, paid for with a wide first window
// (U_s = 1-q).
func GeometricFire(q float64) (FireDist, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return FireDist{}, fmt.Errorf("core: geometric q %v outside (0,1)", q)
	}
	return FireDist{
		Name: fmt.Sprintf("geometric(q=%g)", q),
		CDF: func(x float64) float64 {
			k := math.Floor(x)
			if k < 1 {
				return 0
			}
			return 1 - math.Pow(q, k)
		},
		Quantile: func(u float64) float64 {
			// Smallest integer k with 1 - q^k ≥ u.
			k := math.Ceil(math.Log(1-u) / math.Log(q))
			if k < 1 || math.IsNaN(k) {
				k = 1
			}
			return k
		},
	}, nil
}

// PowerFire uses F(x) = min(1, (εx)^α) for α > 0: α < 1 front-loads,
// α > 1 back-loads, α = 1 is uniform.
func PowerFire(epsilon, alpha float64) (FireDist, error) {
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return FireDist{}, fmt.Errorf("core: epsilon %v outside (0,1]", epsilon)
	}
	if alpha <= 0 || math.IsNaN(alpha) {
		return FireDist{}, fmt.Errorf("core: alpha %v must be positive", alpha)
	}
	return FireDist{
		Name: fmt.Sprintf("power(ε=%g, α=%g)", epsilon, alpha),
		CDF: func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return clamp01(math.Pow(epsilon*x, alpha))
		},
		Quantile: func(u float64) float64 {
			return math.Pow(u, 1/alpha) / epsilon
		},
	}, nil
}

// WindowSup computes U_s for the distribution on horizons up to maxLevel:
// the largest probability mass the adversary can trap in one one-level
// window, max_{0 ≤ c ≤ maxLevel} F(c+1) − F(c).
func (d FireDist) WindowSup(maxLevel int) float64 {
	sup := 0.0
	for c := 0; c <= maxLevel; c++ {
		if w := d.CDF(float64(c+1)) - d.CDF(float64(c)); w > sup {
			sup = w
		}
	}
	return sup
}

// SFire is Protocol S with a custom rfire distribution; mechanics
// (counting, messages, decision rule) are identical to S.
type SFire struct {
	dist FireDist
}

var _ protocol.Protocol = (*SFire)(nil)

// NewSFire returns Protocol S drawing rfire from the given distribution.
func NewSFire(dist FireDist) (*SFire, error) {
	if dist.CDF == nil || dist.Quantile == nil {
		return nil, fmt.Errorf("core: fire distribution needs CDF and Quantile")
	}
	if f0 := dist.CDF(0); f0 != 0 {
		return nil, fmt.Errorf("core: fire distribution has F(0) = %v, want 0", f0)
	}
	return &SFire{dist: dist}, nil
}

// Name implements protocol.Protocol.
func (s *SFire) Name() string { return fmt.Sprintf("S[%s]", s.dist.Name) }

// Dist reports the rfire distribution.
func (s *SFire) Dist() FireDist { return s.dist }

// NewMachine implements protocol.Protocol.
func (s *SFire) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.G.NumVertices()
	if m < 2 || m > MaxProcesses {
		return nil, fmt.Errorf("core: Protocol S needs 2 ≤ m ≤ %d, got %d", MaxProcesses, m)
	}
	mach := &SMachine{id: cfg.ID, m: m, sState: sState{valid: cfg.Input}}
	if cfg.ID == 1 {
		u, err := cfg.Tape.Float64Open01()
		if err != nil {
			return nil, fmt.Errorf("core: drawing rfire: %w", err)
		}
		mach.rfire = s.dist.Quantile(u)
		if mach.rfire <= 0 {
			return nil, fmt.Errorf("core: fire quantile returned %v ≤ 0", mach.rfire)
		}
		mach.rfireDefined = true
		if mach.valid {
			mach.count = 1
			mach.seen = mach.bit(1)
		}
	}
	return mach, nil
}

// LivenessAt is F(ml): the probability all processes attack on a run with
// ML(R) = ml ≥ 1.
func (s *SFire) LivenessAt(ml int) float64 {
	if ml < 1 {
		return 0
	}
	return s.dist.CDF(float64(ml))
}
