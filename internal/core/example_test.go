package core_test

import (
	"fmt"
	"log"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// ExampleS_Analyze shows the closed-form outcome distribution of Protocol
// S on a damaged run: the adversary cuts the link halfway, liveness
// degrades proportionally, disagreement stays pinned at ε.
func ExampleS_Analyze() {
	g := graph.Pair()
	s := core.MustS(0.1)
	good, err := run.Good(g, 10, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	a, err := s.Analyze(g, run.CutAt(good, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ML(R)=%d  Pr[TA]=%.2f  Pr[PA]=%.2f  Pr[NA]=%.2f\n",
		a.ModMin, a.PTotal, a.PPartial, a.PNone)
	// Output:
	// ML(R)=5  Pr[TA]=0.50  Pr[PA]=0.10  Pr[NA]=0.40
}

// ExampleTradeoffBound shows the Theorem 5.4 ceiling: on a run with
// information level 7, no ε=0.1 protocol can attack with probability
// above 0.7.
func ExampleTradeoffBound() {
	fmt.Println(core.TradeoffBound(0.1, 7))
	fmt.Println(core.TradeoffBound(0.1, 15)) // clamps at 1
	// Output:
	// 0.7000000000000001
	// 1
}
