package core

import (
	"math"
	"strings"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestAltValidityName(t *testing.T) {
	sp, err := NewSAltValidity(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.FireFloor() != 1 {
		t.Errorf("FireFloor = %d, want 1", sp.FireFloor())
	}
	if !strings.Contains(sp.Name(), "S′") {
		t.Errorf("Name = %q", sp.Name())
	}
	if MustS(0.2).FireFloor() != 0 {
		t.Error("paper's S has nonzero fire floor")
	}
	if _, err := NewSAltValidity(0); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestAltValidityNoMessagesNoAttack(t *testing.T) {
	// Footnote 1's condition: on ANY run with M(R) = ∅ — inputs or not —
	// nobody attacks, for every sampled tape.
	sp, err := NewSAltValidity(0.9) // aggressive ε to stress the floor
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	inputSets := [][]graph.ProcID{{}, {1}, {2}, {1, 2, 3, 4}}
	for _, inputs := range inputSets {
		r, err := run.Silent(4, inputs...)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			outs, err := sim.Outputs(sp, g, r, sim.SeedTapes(uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 4; i++ {
				if outs[i] {
					t.Fatalf("alt-validity violated: %d attacked on message-free run with inputs %v",
						i, inputs)
				}
			}
		}
		a, err := sp.Analyze(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if a.PTotal != 0 || a.PPartial != 0 {
			t.Errorf("inputs %v: exact distribution (%v, %v) not silent", inputs, a.PTotal, a.PPartial)
		}
	}
	// The paper's S, by contrast, attacks with probability ε at process 1
	// on the input-at-1 silent run — the two validity conditions really
	// differ.
	s := MustS(0.9)
	r, err := run.Silent(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.PPartial != 0.9 {
		t.Errorf("paper's S on silent-with-input run: PA = %v, want ε", a.PPartial)
	}
}

func TestAltValidityLivenessOneLevelBehind(t *testing.T) {
	// L(S′, R) = min(1, ε·(ML(R)−1)), exact and measured.
	eps := 0.1
	sp, err := NewSAltValidity(eps)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Pair()
	for _, n := range []int{3, 6, 10} {
		good, err := run.Good(g, n, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sp.Analyze(g, good)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Min(1, eps*float64(a.ModMin-1))
		if math.Abs(a.PTotal-want) > 1e-12 {
			t.Errorf("N=%d: exact liveness %v, want %v", n, a.PTotal, want)
		}
		// Monte-Carlo check.
		stream := rng.NewStream(uint64(n))
		hits := 0
		const trials = 4000
		for trial := 0; trial < trials; trial++ {
			outs, err := sim.Outputs(sp, g, good, sim.StreamTapes(stream, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if outs[1] && outs[2] {
				hits++
			}
		}
		if got := float64(hits) / trials; math.Abs(got-want) > 0.03 {
			t.Errorf("N=%d: measured liveness %v, want %v", n, got, want)
		}
	}
}

func TestAltValidityAgreementStillEpsilon(t *testing.T) {
	// U_s(S′) ≤ ε across random runs (exact objective).
	eps := 0.15
	sp, err := NewSAltValidity(eps)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(88)
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sp.Analyze(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if a.PPartial > eps+1e-12 {
			t.Fatalf("agreement violated: PA = %v on %v", a.PPartial, r)
		}
		if a.PPartial > worst {
			worst = a.PPartial
		}
	}
	if worst < eps-1e-9 {
		t.Logf("note: sampled worst PA %v below ε %v (tightness needs the right run)", worst, eps)
	}
}
