package core

import (
	"math"
	"strings"
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestNewSValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := NewS(eps); err == nil {
			t.Errorf("NewS(%v) succeeded, want error", eps)
		}
	}
	if _, err := NewSWithSlack(0.1, -1); err == nil {
		t.Error("negative slack accepted")
	}
	s, err := NewS(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epsilon() != 0.25 || s.Slack() != 0 {
		t.Errorf("accessors wrong: ε=%v slack=%d", s.Epsilon(), s.Slack())
	}
	if !strings.Contains(s.Name(), "S") {
		t.Errorf("Name = %q", s.Name())
	}
	g1, err := NewSWithSlack(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g1.Name(), "+1") {
		t.Errorf("slack variant Name = %q", g1.Name())
	}
}

func TestSMachineRequiresSmallM(t *testing.T) {
	s := MustS(0.5)
	single := graph.MustNew(1, nil)
	cfg := protocol.Config{ID: 1, G: single, N: 2, Tape: rng.NewTape(1)}
	if _, err := s.NewMachine(cfg); err == nil {
		t.Error("m=1 machine accepted")
	}
}

func TestSMachineInitialState(t *testing.T) {
	s := MustS(0.5)
	g := graph.Pair()
	m1, err := s.NewMachine(protocol.Config{ID: 1, G: g, N: 3, Input: true, Tape: rng.NewTape(1)})
	if err != nil {
		t.Fatal(err)
	}
	sm1 := m1.(*SMachine)
	if !sm1.RFireKnown() {
		t.Error("process 1 must know rfire at start")
	}
	if rf := sm1.RFire(); rf <= 0 || rf > 1/0.5 {
		t.Errorf("rfire = %v outside (0, 2]", rf)
	}
	if sm1.Count() != 1 || !sm1.Valid() {
		t.Errorf("process 1 with input: count=%d valid=%v, want 1/true", sm1.Count(), sm1.Valid())
	}
	if seen := sm1.Seen(); len(seen) != 1 || seen[0] != 1 {
		t.Errorf("process 1 seen = %v, want [1]", seen)
	}

	m1ni, err := s.NewMachine(protocol.Config{ID: 1, G: g, N: 3, Input: false, Tape: rng.NewTape(2)})
	if err != nil {
		t.Fatal(err)
	}
	if sm := m1ni.(*SMachine); sm.Count() != 0 || sm.Valid() {
		t.Errorf("process 1 without input: count=%d valid=%v, want 0/false", sm.Count(), sm.Valid())
	}

	m2, err := s.NewMachine(protocol.Config{ID: 2, G: g, N: 3, Input: true, Tape: rng.NewTape(3)})
	if err != nil {
		t.Fatal(err)
	}
	if sm := m2.(*SMachine); sm.RFireKnown() || sm.Count() != 0 || !sm.Valid() {
		t.Errorf("process 2 with input: rfire=%v count=%d valid=%v", sm.RFireKnown(), sm.Count(), sm.Valid())
	}
}

func TestSRejectsForeignMessage(t *testing.T) {
	s := MustS(0.5)
	g := graph.Pair()
	m, err := s.NewMachine(protocol.Config{ID: 2, G: g, N: 2, Tape: rng.NewTape(1)})
	if err != nil {
		t.Fatal(err)
	}
	type alien struct{ protocol.Message }
	if err := m.Step(1, []protocol.Received{{From: 1, Msg: alien{}}}); err == nil {
		t.Error("foreign message type accepted")
	}
}

func TestValiditySampledRuns(t *testing.T) {
	// Theorem 6.5: on any run with I(R) = ∅, every process outputs 0 —
	// for every random tape. We sample runs and tapes.
	s := MustS(0.3)
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(50)
	stream := rng.NewStream(51)
	for trial := 0; trial < 100; trial++ {
		r, err := run.RandomSubset(g, 3, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		outs, err := sim.Outputs(s, g, r, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			if outs[i] {
				t.Fatalf("validity violated: process %d attacked on input-free run %v", i, r)
			}
		}
	}
}

// driveWithInspection runs Protocol S round by round with direct access
// to the machines, returning the machines after every round for white-box
// invariant audits. It mirrors sim's loop engine exactly.
func driveWithInspection(t *testing.T, s *S, g *graph.G, r *run.Run, seed uint64) [][]*SMachine {
	t.Helper()
	m := g.NumVertices()
	stream := rng.NewStream(seed)
	machines := make([]*SMachine, m+1)
	for i := 1; i <= m; i++ {
		mach, err := s.NewMachine(protocol.Config{
			ID: graph.ProcID(i), G: g, N: r.N(),
			Input: r.HasInput(graph.ProcID(i)),
			Tape:  stream.Tape(0, uint64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = mach.(*SMachine)
	}
	snapshot := func() []*SMachine {
		out := make([]*SMachine, m+1)
		for i := 1; i <= m; i++ {
			c := *machines[i]
			out[i] = &c
		}
		return out
	}
	states := [][]*SMachine{snapshot()} // index r = state after round r
	for round := 1; round <= r.N(); round++ {
		inboxes := make([][]protocol.Received, m+1)
		for i := 1; i <= m; i++ {
			from := graph.ProcID(i)
			for _, to := range g.Neighbors(from) {
				msg := machines[i].Send(round, to)
				if r.Delivered(from, to, round) {
					inboxes[to] = append(inboxes[to], protocol.Received{From: from, Msg: msg})
				}
			}
		}
		for i := 1; i <= m; i++ {
			if err := machines[i].Step(round, inboxes[i]); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, snapshot())
	}
	return states
}

func TestLemma64CountTracksModifiedLevel(t *testing.T) {
	// count_i^r = ML_i^r(R) for every process, round, and run — the
	// linchpin of Protocol S's optimality (Lemma 6.4).
	s := MustS(0.2)
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Ring(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Complete(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Line(3); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		m := g.NumVertices()
		tape := rng.NewTape(uint64(77 + m))
		for trial := 0; trial < 120; trial++ {
			r, err := run.RandomSubset(g, 4, tape)
			if err != nil {
				t.Fatal(err)
			}
			mt, err := causality.NewModLevelTable(r, m)
			if err != nil {
				t.Fatal(err)
			}
			states := driveWithInspection(t, s, g, r, uint64(trial))
			for round := 0; round <= r.N(); round++ {
				for i := 1; i <= m; i++ {
					want := mt.At(graph.ProcID(i), round)
					if got := states[round][i].Count(); got != want {
						t.Fatalf("%v trial %d: count_%d^%d = %d, ML = %d (run %v)",
							g, trial, i, round, got, want, r)
					}
				}
			}
		}
	}
}

func TestLemma63Invariants(t *testing.T) {
	// Machine-checked version of the Lemma 6.3 invariants the paper
	// defers to the full version: (1) rfire_i ∈ {rfire, undefined};
	// (2) count ≥ 1 ⇔ rfire known ∧ valid; (3) rfire known ⇔ (1,0)
	// flows to (i,r); (4) valid ⇔ (v₀,-1) flows to (i,r); (7) seen ≠ V,
	// i ∈ seen when counting; (8) ML_i^r ≥ count_i^r.
	s := MustS(0.25)
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	m := g.NumVertices()
	tape := rng.NewTape(123)
	for trial := 0; trial < 150; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		states := driveWithInspection(t, s, g, r, uint64(trial))
		rfire := states[0][1].RFire()
		inputFirst := causality.InputArrival(r, m)
		fromOne := causality.ArrivalFrom(r, m, 1, 0)
		mt, err := causality.NewModLevelTable(r, m)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round <= r.N(); round++ {
			for i := 1; i <= m; i++ {
				sm := states[round][i]
				if sm.RFireKnown() && sm.RFire() != rfire {
					t.Fatalf("invariant 1: process %d holds rfire %v ≠ %v", i, sm.RFire(), rfire)
				}
				wantCounting := sm.RFireKnown() && sm.Valid()
				if (sm.Count() >= 1) != wantCounting {
					t.Fatalf("invariant 2: process %d round %d count=%d rfire=%v valid=%v",
						i, round, sm.Count(), sm.RFireKnown(), sm.Valid())
				}
				if got, want := sm.RFireKnown(), fromOne[i] <= round; got != want {
					t.Fatalf("invariant 3: process %d round %d rfireKnown=%v, flow says %v",
						i, round, got, want)
				}
				if got, want := sm.Valid(), inputFirst[i] <= round; got != want {
					t.Fatalf("invariant 4: process %d round %d valid=%v, flow says %v",
						i, round, got, want)
				}
				if mask := sm.SeenMask(); mask == (uint64(1)<<uint(m))-1 {
					t.Fatalf("invariant 7: process %d seen = V", i)
				}
				if sm.Count() >= 1 {
					if mask := sm.SeenMask(); mask&(1<<uint(i-1)) == 0 {
						t.Fatalf("invariant 7: counting process %d missing itself in seen", i)
					}
				}
				if ml := mt.At(graph.ProcID(i), round); sm.Count() > ml {
					t.Fatalf("invariant 8: count_%d^%d = %d > ML = %d", i, round, sm.Count(), ml)
				}
			}
		}
	}
}

// estimate runs trials Monte-Carlo executions of p on (g, r) and returns
// the fraction of TA, PA outcomes.
func estimate(t *testing.T, p protocol.Protocol, g *graph.G, r *run.Run, trials int, seed uint64) (ta, pa float64) {
	t.Helper()
	stream := rng.NewStream(seed)
	var nTA, nPA int
	for trial := 0; trial < trials; trial++ {
		oc, err := sim.Outcome(p, g, r, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		switch oc {
		case protocol.TotalAttack:
			nTA++
		case protocol.PartialAttack:
			nPA++
		}
	}
	return float64(nTA) / float64(trials), float64(nPA) / float64(trials)
}

func TestTheorem68LivenessGoodRun(t *testing.T) {
	// L(S, R_good) = min(1, ε·ML(R_good)) = min(1, ε·N) on K_2.
	const trials = 4000
	for _, tc := range []struct {
		eps float64
		n   int
	}{
		{0.1, 4},  // expect 0.4
		{0.1, 10}, // expect 1.0
		{0.5, 1},  // expect 0.5
		{0.02, 8}, // expect 0.16
	} {
		s := MustS(tc.eps)
		g := graph.Pair()
		r, err := run.Good(g, tc.n, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Min(1, tc.eps*float64(tc.n))
		ta, _ := estimate(t, s, g, r, trials, 1000+uint64(tc.n))
		if math.Abs(ta-want) > 0.03 {
			t.Errorf("ε=%v N=%d: measured liveness %.3f, want %.3f", tc.eps, tc.n, ta, want)
		}
		// Exact analysis must agree with theory precisely.
		a, err := s.Analyze(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.PTotal-want) > 1e-12 {
			t.Errorf("ε=%v N=%d: exact PTotal %.6f, want %.6f", tc.eps, tc.n, a.PTotal, want)
		}
	}
}

func TestTheorem67UnsafetyWindow(t *testing.T) {
	// A run that strands exactly one process a level behind: cut the
	// last message. Pr[PA|R] must be ≈ ε and never exceed it.
	const trials = 6000
	eps := 0.2
	s := MustS(eps)
	g := graph.Pair()
	good, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*run.Run{
		run.CutAt(good, 5),
		run.CutAt(good, 3),
		good,
	} {
		a, err := s.Analyze(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if a.PPartial > eps+1e-12 {
			t.Errorf("exact Pr[PA|%v] = %v > ε", r, a.PPartial)
		}
		_, pa := estimate(t, s, g, r, trials, 777)
		if pa > eps+0.02 {
			t.Errorf("measured Pr[PA|%v] = %.3f > ε+noise", r, pa)
		}
		if math.Abs(pa-a.PPartial) > 0.03 {
			t.Errorf("measured PA %.3f vs exact %.3f on %v", pa, a.PPartial, r)
		}
	}
}

func TestTreeRunLivenessIsEpsilon(t *testing.T) {
	// Theorem A.1's pivot: on the spanning-tree run ML(R) = 1, Protocol S
	// attacks all with probability exactly ε.
	const trials = 8000
	eps := 0.3
	s := MustS(eps)
	g, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.Tree(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PTotal-eps) > 1e-12 {
		t.Errorf("exact tree-run liveness = %v, want ε = %v", a.PTotal, eps)
	}
	ta, _ := estimate(t, s, g, r, trials, 888)
	if math.Abs(ta-eps) > 0.02 {
		t.Errorf("measured tree-run liveness = %.3f, want ε = %v", ta, eps)
	}
}

func TestSlackVariantTradesUnsafetyForLiveness(t *testing.T) {
	// The slack-1 variant beats ε·ML(R) on every run — and pays exactly
	// double the unsafety on the worst run, in line with Theorem A.1:
	// per unit of unsafety it is no better than S.
	eps := 0.15
	greedy, err := NewSWithSlack(eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Pair()

	// Worst run for the slack variant: input at 1 only, total silence.
	worst, err := run.Silent(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := greedy.Analyze(g, worst)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * eps; math.Abs(a.PPartial-want) > 1e-12 {
		t.Errorf("slack-1 worst-run PA = %v, want 2ε = %v", a.PPartial, want)
	}
	if got, want := UnsafetySup(eps, 1), 2*eps; math.Abs(got-want) > 1e-12 {
		t.Errorf("UnsafetySup(ε,1) = %v, want %v", got, want)
	}
	_, pa := estimate(t, greedy, g, worst, 6000, 999)
	if math.Abs(pa-2*eps) > 0.03 {
		t.Errorf("measured slack-1 worst-run PA = %.3f, want %.3f", pa, 2*eps)
	}

	// And on the good run its liveness exceeds S's.
	good, err := run.Good(g, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := greedy.Analyze(g, good)
	if err != nil {
		t.Fatal(err)
	}
	s := MustS(eps)
	as, err := s.Analyze(g, good)
	if err != nil {
		t.Fatal(err)
	}
	if ag.PTotal <= as.PTotal {
		t.Errorf("slack-1 liveness %v not above S's %v", ag.PTotal, as.PTotal)
	}
}

func TestSOnConcurrentEngine(t *testing.T) {
	// Protocol S behaves identically under the goroutine/channel engine.
	s := MustS(0.25)
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(31)
	for trial := 0; trial < 25; trial++ {
		r, err := run.RandomSubset(g, 3, tape)
		if err != nil {
			t.Fatal(err)
		}
		loop, err := sim.Outputs(s, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		conc, err := sim.ConcurrentOutputs(s, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range loop {
			if loop[i] != conc[i] {
				t.Fatalf("engines disagree on S at trial %d: %v vs %v", trial, loop, conc)
			}
		}
	}
}
