package core

import (
	"fmt"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// RunAnalysis is the closed-form distribution of Protocol S's behaviour
// on one run. Because count_i^N = ML_i(R) deterministically (Lemma 6.4)
// and only the uniform threshold rfire is random, every probability is an
// explicit function of the modified levels:
//
//	Pr[D_i | R]  = min(1, ε·(ML_i+k))      if ML_i ≥ 1, else 0
//	Pr[TA | R]   = min(1, ε·(ML_min+k))    if ML_min ≥ 1, else 0   (Thm 6.8)
//	Pr[PA | R]   = Pr[any attacks] − Pr[TA]                        (≤ ε for k=0, Thm 6.7)
//	Pr[NA | R]   = 1 − Pr[any attacks]
//
// where k is the slack (0 for the paper's Protocol S). The quantization
// of rfire to 53-bit floats perturbs each value by < 2⁻⁵², far below
// anything an experiment reports; Monte-Carlo columns in EXPERIMENTS.md
// independently confirm the formulas.
type RunAnalysis struct {
	Epsilon float64
	Slack   int

	Levels    []int // L_i(R), index 1..m (index 0 unused)
	ModLevels []int // ML_i(R), index 1..m (index 0 unused)
	LevelMin  int   // L(R)
	ModMin    int   // ML(R)
	ModMax    int   // max_i ML_i(R)

	PAttack  []float64 // Pr[D_i|R], index 1..m (index 0 unused)
	PTotal   float64   // Pr[TA|R] — the liveness L(S, R)
	PPartial float64   // Pr[PA|R]
	PNone    float64   // Pr[NA|R]

	// Bound is the Theorem 5.4 ceiling min(1, ε·L(R)): no protocol with
	// unsafety ≤ ε can exceed it on this run.
	Bound float64
}

// Analyze computes the exact distribution of Protocol S (or a slack
// variant) on run r over m = g.NumVertices() processes.
func (s *S) Analyze(g *graph.G, r *run.Run) (*RunAnalysis, error) {
	return s.AnalyzeWith(g, r, nil)
}

// AnalyzeWith is Analyze with memoized level tables: sweeps that
// revisit runs (prefix ladders, multi-protocol comparisons on shared
// scenarios) fetch the L/ML tables from memo instead of recomputing
// the causality closure. A nil memo computes without caching; the
// analysis itself is identical either way, since level tables depend
// only on (run, m), never on the protocol.
func (s *S) AnalyzeWith(g *graph.G, r *run.Run, memo *causality.Memo) (*RunAnalysis, error) {
	if err := r.Validate(g); err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	m := g.NumVertices()
	lt, err := memo.Table(r, m, false)
	if err != nil {
		return nil, err
	}
	mt, err := memo.Table(r, m, true)
	if err != nil {
		return nil, err
	}
	a := &RunAnalysis{
		Epsilon:   s.epsilon,
		Slack:     s.slack,
		Levels:    lt.Finals(),
		ModLevels: mt.Finals(),
		LevelMin:  lt.Min(),
		ModMin:    mt.Min(),
		ModMax:    mt.Max(),
	}
	a.PAttack = make([]float64, m+1)
	for i := 1; i <= m; i++ {
		a.PAttack[i] = attackProbShifted(s.epsilon, s.slack, s.fireFloor, a.ModLevels[i])
	}
	a.PTotal = attackProbShifted(s.epsilon, s.slack, s.fireFloor, a.ModMin)
	pAny := attackProbShifted(s.epsilon, s.slack, s.fireFloor, a.ModMax)
	a.PPartial = pAny - a.PTotal
	a.PNone = 1 - pAny
	a.Bound = TradeoffBound(s.epsilon, a.LevelMin)
	return a, nil
}

// attackProb is Pr[count ≥ 1 and rfire ≤ count+k] for count = ml, for
// the paper's rfire range (0, 1/ε].
func attackProb(epsilon float64, slack, ml int) float64 {
	return attackProbShifted(epsilon, slack, 0, ml)
}

// attackProbShifted generalizes to rfire uniform in (floor, floor+1/ε]:
// Pr[count ≥ 1 and rfire ≤ count+k] = min(1, ε·(ml+k−floor)) clamped.
func attackProbShifted(epsilon float64, slack, floor, ml int) float64 {
	if ml < 1 {
		return 0
	}
	return clamp01(epsilon * float64(ml+slack-floor))
}

// TradeoffBound is Theorem 5.4's ceiling on liveness for any protocol F
// with U_s(F) ≤ ε: L(F, R) ≤ min(1, ε·L(R)). Dividing by ε gives the
// headline tradeoff L/U ≤ L(R) ≤ N+1.
func TradeoffBound(epsilon float64, level int) float64 {
	if level < 0 {
		return 0
	}
	return clamp01(epsilon * float64(level))
}

// LivenessExact is Theorem 6.8's exact liveness of Protocol S on a run
// with modified level ml: min(1, ε·ml).
func LivenessExact(epsilon float64, ml int) float64 {
	return attackProb(epsilon, 0, ml)
}

// UnsafetySup is the exact supremum of Pr[PA|R] over all runs for the
// slack-k variant on any graph with m ≥ 2: the worst run leaves one
// process at ML = 1 (process 1, input, silence) and the rest at 0, so
//
//	U_s = min(1, ε·(1+k)).
//
// For the paper's Protocol S (k = 0) this is exactly ε — Theorem 6.7 is
// tight. The adversary-search experiments (T3) rediscover this value
// empirically.
func UnsafetySup(epsilon float64, slack int) float64 {
	return clamp01(epsilon * float64(1+slack))
}

// LivenessOverUnsafety is the figure of merit L(F, R)/U_s(F) that the
// paper proves cannot exceed L(R) ≤ N+1 (Theorem 5.4 divided by U_s).
func LivenessOverUnsafety(liveness, unsafety float64) float64 {
	if unsafety <= 0 {
		return 0
	}
	return liveness / unsafety
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
