package core

import (
	"math"
	"testing"
	"testing/quick"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func TestAnalyzeGoodRunPair(t *testing.T) {
	s := MustS(0.1)
	g := graph.Pair()
	r, err := run.Good(g, 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.LevelMin != 7 { // L(R_good) = N+1 on K_2 with both inputs
		t.Errorf("L(R) = %d, want 7", a.LevelMin)
	}
	if a.ModMin != 6 || a.ModMax != 7 {
		t.Errorf("ML range = [%d, %d], want [6, 7]", a.ModMin, a.ModMax)
	}
	if want := 0.6; math.Abs(a.PTotal-want) > 1e-12 {
		t.Errorf("PTotal = %v, want %v", a.PTotal, want)
	}
	if want := 0.1; math.Abs(a.PPartial-want) > 1e-12 {
		t.Errorf("PPartial = %v, want %v (one-level ML gap)", a.PPartial, want)
	}
	if want := 0.3; math.Abs(a.PNone-want) > 1e-12 {
		t.Errorf("PNone = %v, want %v", a.PNone, want)
	}
	if want := 0.7; math.Abs(a.Bound-want) > 1e-12 {
		t.Errorf("Bound = %v, want ε·L(R) = %v", a.Bound, want)
	}
	// Per-process attack probabilities follow the per-process levels.
	for i := 1; i <= 2; i++ {
		want := math.Min(1, 0.1*float64(a.ModLevels[i]))
		if math.Abs(a.PAttack[i]-want) > 1e-12 {
			t.Errorf("PAttack[%d] = %v, want %v", i, a.PAttack[i], want)
		}
	}
}

func TestAnalyzeSilentRun(t *testing.T) {
	s := MustS(0.4)
	g := graph.Pair()
	r, err := run.Silent(3) // no input at all
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.PTotal != 0 || a.PPartial != 0 || a.PNone != 1 {
		t.Errorf("silent run distribution = (%v, %v, %v), want (0,0,1)",
			a.PTotal, a.PPartial, a.PNone)
	}

	// Input at 1 only, still silent: ML_1 = 1, ML_2 = 0 → PA = ε exactly.
	r1, err := run.Silent(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := s.Analyze(g, r1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.PPartial-0.4) > 1e-12 {
		t.Errorf("PA on silent-with-input = %v, want ε", a1.PPartial)
	}
	if a1.PTotal != 0 {
		t.Errorf("PTotal = %v, want 0 (process 2 can never attack)", a1.PTotal)
	}
}

func TestAnalyzeRejectsBadRun(t *testing.T) {
	s := MustS(0.2)
	g := graph.Pair()
	bad := run.MustNew(2)
	bad.AddInput(7)
	if _, err := s.Analyze(g, bad); err == nil {
		t.Error("Analyze accepted run with out-of-graph input")
	}
}

func TestTradeoffBound(t *testing.T) {
	tests := []struct {
		eps   float64
		level int
		want  float64
	}{
		{0.1, 0, 0},
		{0.1, 3, 0.3},
		{0.1, 15, 1},
		{0.5, 1, 0.5},
		{0.2, -1, 0},
	}
	for _, tc := range tests {
		if got := TradeoffBound(tc.eps, tc.level); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("TradeoffBound(%v, %d) = %v, want %v", tc.eps, tc.level, got, tc.want)
		}
	}
}

func TestLivenessExact(t *testing.T) {
	if got := LivenessExact(0.25, 0); got != 0 {
		t.Errorf("LivenessExact(ε, 0) = %v, want 0", got)
	}
	if got := LivenessExact(0.25, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LivenessExact(0.25, 2) = %v, want 0.5", got)
	}
	if got := LivenessExact(0.25, 100); got != 1 {
		t.Errorf("LivenessExact clamps to 1, got %v", got)
	}
}

func TestLivenessOverUnsafety(t *testing.T) {
	if got := LivenessOverUnsafety(0.9, 0.1); math.Abs(got-9) > 1e-12 {
		t.Errorf("ratio = %v, want 9", got)
	}
	if got := LivenessOverUnsafety(0.5, 0); got != 0 {
		t.Errorf("zero-unsafety ratio = %v, want 0 sentinel", got)
	}
}

func TestTheorem54OnRandomRuns(t *testing.T) {
	// L(S, R) ≤ ε·L(R) for every sampled run — Protocol S never beats
	// the universal bound (it matches it to within the ε ML-gap).
	s := MustS(0.15)
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(5150)
	for trial := 0; trial < 400; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		a, err := s.Analyze(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if a.PTotal > a.Bound+1e-12 {
			t.Fatalf("Theorem 5.4 violated on %v: liveness %v > bound %v", r, a.PTotal, a.Bound)
		}
		if a.PPartial > s.Epsilon()+1e-12 {
			t.Fatalf("Theorem 6.7 violated on %v: PA %v > ε", r, a.PPartial)
		}
		if sum := a.PTotal + a.PPartial + a.PNone; math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v on %v", sum, r)
		}
	}
}

func TestQuickDistributionWellFormed(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, epsRaw uint8, slackRaw uint8) bool {
		eps := (float64(epsRaw%100) + 1) / 101 // (0, 1)
		slack := int(slackRaw % 3)
		s, err := NewSWithSlack(eps, slack)
		if err != nil {
			return false
		}
		r, err := run.RandomSubset(g, 3, rng.NewTape(seed))
		if err != nil {
			return false
		}
		a, err := s.Analyze(g, r)
		if err != nil {
			return false
		}
		ok := a.PTotal >= 0 && a.PPartial >= 0 && a.PNone >= 0 &&
			math.Abs(a.PTotal+a.PPartial+a.PNone-1) < 1e-9 &&
			a.PPartial <= UnsafetySup(eps, slack)+1e-12
		// Monotonicity of attack probabilities in ML.
		for i := 1; i <= 4; i++ {
			for j := 1; j <= 4; j++ {
				if a.ModLevels[i] >= a.ModLevels[j] && a.PAttack[i] < a.PAttack[j]-1e-12 {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
