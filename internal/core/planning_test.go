package core

import (
	"math"
	"testing"

	"coordattack/internal/graph"
)

func TestUsualCase(t *testing.T) {
	g := graph.Pair()
	if err := UsualCase(g, 5, 0.1); err != nil {
		t.Errorf("valid usual case rejected: %v", err)
	}
	if err := UsualCase(g, 5, 0.5); err == nil {
		t.Error("ε = 0.5 accepted")
	}
	if err := UsualCase(g, 5, 0); err == nil {
		t.Error("ε = 0 accepted")
	}
	disconnected := graph.MustNew(4, []graph.Edge{{A: 1, B: 2}, {A: 3, B: 4}})
	if err := UsualCase(disconnected, 5, 0.1); err == nil {
		t.Error("disconnected graph accepted")
	}
	line, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := UsualCase(line, 3, 0.1); err == nil {
		t.Error("diameter > N accepted")
	}
	if err := UsualCase(line, 5, 0.1); err != nil {
		t.Errorf("diameter = N rejected: %v", err)
	}
}

func TestRecommendEpsilon(t *testing.T) {
	g := graph.Pair()
	// ML(good) = N on K_2: liveness 1 needs ε = 1/N.
	plan, err := RecommendEpsilon(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Epsilon-1.0/20) > 1e-12 {
		t.Errorf("ε = %v, want 0.05", plan.Epsilon)
	}
	if plan.GoodML != 20 || plan.Liveness < 1-1e-12 {
		t.Errorf("plan = %+v", plan)
	}
	// Half liveness costs half the ε.
	half, err := RecommendEpsilon(g, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Epsilon-0.025) > 1e-12 {
		t.Errorf("half-liveness ε = %v, want 0.025", half.Epsilon)
	}
	if _, err := RecommendEpsilon(g, 20, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := RecommendEpsilon(g, 20, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
}

func TestRecommendRounds(t *testing.T) {
	g := graph.Pair()
	// At ε = 0.05, liveness 1 needs ML ≥ 20 → N = 20 on K_2.
	plan, err := RecommendRounds(g, 0.05, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds != 20 {
		t.Errorf("N = %d, want 20", plan.Rounds)
	}
	// Tighter ε than the cap allows: the Theorem 5.4 wall.
	if _, err := RecommendRounds(g, 0.01, 1, 50); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := RecommendRounds(g, 0, 1, 50); err == nil {
		t.Error("ε = 0 accepted")
	}
	if _, err := RecommendRounds(g, 0.1, 2, 50); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, err := RecommendRounds(g, 0.1, 1, 0); err == nil {
		t.Error("maxN = 0 accepted")
	}
}

func TestRecommendationsConsistent(t *testing.T) {
	// Round-trip: the ε recommended for (N, target) reaches the target
	// within N rounds when solved the other way.
	ring, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := RecommendEpsilon(ring, 24, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RecommendRounds(ring, plan.Epsilon, 0.9, 24)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rounds > 24 {
		t.Errorf("round trip needs %d rounds > 24", back.Rounds)
	}
}
