package core

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// sFastState is Protocol S's struct-of-arrays execution state: the sState
// records of all m processes, double-buffered by round parity, advanced
// against a run.Set with zero allocation. It runs the exact transition
// code (sAgg.absorb / sState.apply) the reference SMachine runs, folding
// each process's delivered in-neighbors in ascending sender order — the
// same order the sorted Received slices impose on the reference path.
type sFastState struct {
	proto *S
	n, m  int
	full  uint64
	// neighbors[i] is i's sorted neighbor list, cached once because
	// graph.Neighbors allocates a copy per call.
	neighbors [][]graph.ProcID
	// buf[r&1][i] is process i's state after round r (Init fills buf[0]
	// with the round-0 states).
	buf [2][]sState
}

var _ protocol.FastProtocol = (*S)(nil)

// NewFastState implements protocol.FastProtocol.
func (s *S) NewFastState(g *graph.G, n int) (protocol.FastState, error) {
	m := g.NumVertices()
	if m < 2 || m > MaxProcesses {
		return nil, fmt.Errorf("core: Protocol S needs 2 ≤ m ≤ %d, got %d", MaxProcesses, m)
	}
	if n < 1 {
		return nil, fmt.Errorf("core: fast state needs N ≥ 1, got %d", n)
	}
	st := &sFastState{proto: s, n: n, m: m, full: fullSetMask(m)}
	st.neighbors = make([][]graph.ProcID, m+1)
	for i := 1; i <= m; i++ {
		st.neighbors[i] = g.Neighbors(graph.ProcID(i))
	}
	st.buf[0] = make([]sState, m+1)
	st.buf[1] = make([]sState, m+1)
	return st, nil
}

func fullSetMask(m int) uint64 {
	if m == 64 {
		return ^uint64(0)
	}
	return (1 << uint(m)) - 1
}

// Init implements protocol.FastState: the round-0 states of NewMachine —
// valid iff the input arrived, and process 1 draws rfire from α_1.
func (st *sFastState) Init(rs *run.Set, bank *rng.Bank) error {
	cur := st.buf[0]
	for i := 1; i <= st.m; i++ {
		cur[i] = sState{valid: rs.HasInput(graph.ProcID(i))}
	}
	u, err := bank.Tape(1).Float64Open01()
	if err != nil {
		return fmt.Errorf("core: drawing rfire: %w", err)
	}
	one := &cur[1]
	one.rfire = float64(st.proto.fireFloor) + u/st.proto.epsilon
	one.rfireDefined = true
	if one.valid {
		one.count = 1
		one.seen = 1
	}
	return nil
}

// Step implements protocol.FastState.
func (st *sFastState) Step(rs *run.Set, round int, i graph.ProcID) error {
	prev := st.buf[(round-1)&1]
	var agg sAgg
	for _, from := range st.neighbors[i] {
		if rs.Delivered(from, i, round) {
			agg.absorb(&prev[from])
		}
	}
	next := &st.buf[round&1][i]
	*next = prev[i]
	next.apply(&agg, i, st.full)
	return nil
}

// Output implements protocol.FastState.
func (st *sFastState) Output(i graph.ProcID) bool {
	return st.buf[st.n&1][i].output(st.proto.slack)
}
