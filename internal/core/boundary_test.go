package core

import (
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestSAtSixtyFourGenerals(t *testing.T) {
	// The seen-set bitmask boundary: m = 64 uses the full word. Protocol
	// S must still count levels correctly on the good run (everyone at
	// ML ≥ 1 after the star's two-hop exchange, coordinated attack with
	// the exact probability).
	const m = 64
	g, err := graph.Star(m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	eps := 0.5
	s := MustS(eps)
	good, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, good)
	if err != nil {
		t.Fatal(err)
	}
	if a.ModMin < 1 {
		t.Fatalf("ML(R) = %d on the good run, want ≥ 1", a.ModMin)
	}
	outs, err := sim.Outputs(s, g, good, sim.SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	// All-or-nothing given ML homogeneity is not guaranteed, but the
	// engine must at least run cleanly and produce a legal outcome; the
	// exact analysis bounds the disagreement.
	if a.PPartial > eps+1e-12 {
		t.Fatalf("PA %v > ε at m=64", a.PPartial)
	}
	_ = outs

	// m = 65 must be rejected.
	tooBig, err := graph.Star(65)
	if err != nil {
		t.Fatal(err)
	}
	r65 := run.MustNew(2)
	if _, simErr := sim.Outputs(s, tooBig, r65, sim.SeedTapes(1)); simErr == nil {
		t.Error("m = 65 accepted by Protocol S")
	}
}

func TestSeenMaskFullWordMerge(t *testing.T) {
	// White-box: on K_2 the seen set merges to V = {1,2} and resets every
	// exchange; at m = 64 the fullSet mask is ^0. Exercise the fullSet
	// path directly via a 64-general complete exchange round on a star
	// hub: the hub hears all 63 leaves at count 1... the hub's seen set
	// must never literally equal V (Lemma 6.3(7)).
	const m = 64
	g, err := graph.Star(m)
	if err != nil {
		t.Fatal(err)
	}
	s := MustS(0.5)
	good, err := run.Good(g, 4, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	states := driveWithInspection(t, s, g, good, 99)
	full := ^uint64(0)
	for round := 0; round <= 4; round++ {
		for i := 1; i <= m; i++ {
			if states[round][i].SeenMask() == full {
				t.Fatalf("seen_%d = V at round %d", i, round)
			}
		}
	}
}
