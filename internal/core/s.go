// Package core implements the paper's primary contribution: Protocol S of
// §6 — the randomized coordinated-attack protocol that is optimal against
// a strong adversary — together with its exact per-run analysis, the
// Theorem 5.4 tradeoff bound, and the slack-k variants used to exhibit
// the Theorem A.1 tradeoff.
//
// Protocol S in one paragraph: the distinguished process 1 draws a random
// threshold rfire uniform in (0, 1/ε]. Every process maintains count_i,
// which tracks the modified information level ML_i^r(R) of the current
// run (Lemma 6.4): count_i becomes 1 when i has heard both the input and
// process 1's rfire, and rises to s when i has heard that every other
// process reached s-1. After round N, i attacks iff it knows rfire and
// count_i ≥ rfire. Since any two processes' counts differ by at most one
// (Lemma 6.2), disagreement requires the adversary to land rfire in a
// unit-length window it cannot see: U_s(S) ≤ ε (Theorem 6.7), while
// liveness grows with the information the adversary lets through:
// L(S, R) = min(1, ε·ML(R)) (Theorem 6.8).
package core

import (
	"fmt"
	"math"
	"math/bits"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// MaxProcesses bounds m for Protocol S machines; seen-sets are tracked as
// 64-bit masks.
const MaxProcesses = 64

// S is Protocol S with agreement parameter ε. Slack 0 is the paper's
// protocol; slack k ≥ 1 is the "greedy" variant that attacks when
// count_i ≥ rfire − k, trading unsafety for liveness one-for-one — the
// ablation for Theorem A.1 (no admissible protocol beats ε·ML(R)
// everywhere).
type S struct {
	epsilon float64
	slack   int
	// fireFloor shifts rfire's range to (fireFloor, fireFloor + 1/ε].
	// Floor 0 is the paper's protocol. Floor 1 implements footnote 1's
	// alternative validity condition — "if no messages are delivered,
	// then no general attacks" — since attacking then requires
	// count ≥ 2, which is unreachable without receiving a message.
	fireFloor int
}

var _ protocol.Protocol = (*S)(nil)

// NewS returns Protocol S with agreement parameter 0 < ε ≤ 1.
func NewS(epsilon float64) (*S, error) {
	return NewSWithSlack(epsilon, 0)
}

// NewSWithSlack returns the slack-k variant; k = 0 is Protocol S itself.
func NewSWithSlack(epsilon float64, slack int) (*S, error) {
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("core: epsilon must be in (0, 1], got %v", epsilon)
	}
	if slack < 0 {
		return nil, fmt.Errorf("core: slack must be nonnegative, got %d", slack)
	}
	return &S{epsilon: epsilon, slack: slack}, nil
}

// MustS is NewS for known-good literals in tests and examples.
func MustS(epsilon float64) *S {
	s, err := NewS(epsilon)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSAltValidity returns the footnote-1 variant S′: rfire is drawn
// uniform in (1, 1 + 1/ε], so an attack requires count ≥ 2 — impossible
// unless some message was delivered. S′ satisfies the alternative
// validity condition ("no messages delivered ⇒ nobody attacks") at the
// cost of one level of liveness: L(S′, R) = min(1, ε·(ML(R) − 1)).
// Agreement is unchanged: U_s(S′) ≤ ε.
func NewSAltValidity(epsilon float64) (*S, error) {
	s, err := NewS(epsilon)
	if err != nil {
		return nil, err
	}
	s.fireFloor = 1
	return s, nil
}

// Name implements protocol.Protocol.
func (s *S) Name() string {
	base := "S"
	if s.fireFloor > 0 {
		base = "S′"
	}
	if s.slack == 0 {
		return fmt.Sprintf("%s(ε=%g)", base, s.epsilon)
	}
	return fmt.Sprintf("%s+%d(ε=%g)", base, s.slack, s.epsilon)
}

// Epsilon reports the agreement parameter.
func (s *S) Epsilon() float64 { return s.epsilon }

// Slack reports the decision slack (0 for the paper's Protocol S).
func (s *S) Slack() int { return s.slack }

// FireFloor reports the rfire range shift (0 for the paper's Protocol S,
// 1 for the footnote-1 alternative-validity variant S′).
func (s *S) FireFloor() int { return s.fireFloor }

// SMsg is the protocol message: the sender's full state, exactly as in
// §6.1 ("i sends a message with its current state to all neighbors in
// every round").
type SMsg struct {
	RFire        float64
	RFireDefined bool
	Count        int
	Seen         uint64 // bitmask; bit i-1 set iff i ∈ seen
	Valid        bool
}

// CAMessage implements protocol.Message.
func (SMsg) CAMessage() {}

// sState is the §6.1 state record (count_i, rfire_i, seen_i, valid_i) of
// one process, shared verbatim between the reference SMachine and the
// struct-of-arrays fast state so both paths run the same transition code.
type sState struct {
	rfire        float64
	count        int
	seen         uint64
	rfireDefined bool
	valid        bool
}

// sAgg accumulates one round of received sender states. absorb must be
// called in ascending sender order: PROCESS-MESSAGE's "first defined
// rfire" rule reads the sorted S_i^r, and keeping the same order keeps the
// fast path bit-identical to the reference even if an invariant-violating
// mutation ever makes two defined rfires differ.
type sAgg struct {
	rfire     float64
	highcount int
	highseen  uint64
	rfireDef  bool
	valid     bool
	any       bool
}

func (a *sAgg) absorb(m *sState) {
	if !a.any {
		a.any = true
		a.highcount = m.count
		a.highseen = m.seen
	} else if m.count > a.highcount {
		a.highcount = m.count
		a.highseen = m.seen
	} else if m.count == a.highcount {
		a.highseen |= m.seen
	}
	if !a.rfireDef && m.rfireDefined {
		a.rfire = m.rfire
		a.rfireDef = true
	}
	a.valid = a.valid || m.valid
}

// apply is PROCESS-MESSAGE(S_i, i) from Figure 1, folded over an sAgg.
// full is the all-processes seen mask for the system's m.
func (st *sState) apply(a *sAgg, id graph.ProcID, full uint64) {
	selfBit := uint64(1) << uint(id-1)
	// Line 1: learn rfire.
	if !st.rfireDefined && a.rfireDef {
		st.rfire = a.rfire
		st.rfireDefined = true
	}
	// Line 2: learn validity.
	if !st.valid && a.valid {
		st.valid = true
	}
	// Line 3: start counting. (Figure 1 leaves seen implicit here; the
	// invariant i ∈ seen_i whenever count_i ≥ 1 — Lemma 6.3(7) — pins it
	// to {i}, matching process 1's initial state.)
	if st.valid && st.rfireDefined && st.count == 0 {
		st.count = 1
		st.seen = selfBit
	}
	// Counting block.
	if st.count >= 1 && a.any {
		switch {
		case a.highcount == st.count:
			st.seen |= a.highseen | selfBit
		case a.highcount > st.count:
			st.seen = a.highseen | selfBit
			st.count = a.highcount
		}
		if st.seen == full {
			st.count++
			st.seen = selfBit
		}
	}
}

// output is O_i: attack iff rfire is known and count_i (plus slack for the
// greedy variants, which additionally require count_i ≥ 1 so validity is
// preserved) reaches rfire.
func (st *sState) output(slack int) bool {
	if !st.rfireDefined || st.count < 1 {
		return false
	}
	return float64(st.count+slack) >= st.rfire
}

// SMachine is one local state machine F_i of Protocol S. Its state
// variables mirror §6.1: count_i, rfire_i (with a defined flag standing
// in for the paper's "undefined" sentinel), seen_i, valid_i.
type SMachine struct {
	id    graph.ProcID
	m     int
	slack int

	sState
}

var _ protocol.Machine = (*SMachine)(nil)

// NewMachine implements protocol.Protocol. Process 1 draws rfire uniform
// in (0, 1/ε] from its tape; every process starts valid iff the input
// signal arrived; process 1 starts count_1 = 1 iff valid.
func (s *S) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.G.NumVertices()
	if m < 2 || m > MaxProcesses {
		return nil, fmt.Errorf("core: Protocol S needs 2 ≤ m ≤ %d, got %d", MaxProcesses, m)
	}
	mach := &SMachine{id: cfg.ID, m: m, slack: s.slack, sState: sState{valid: cfg.Input}}
	if cfg.ID == 1 {
		u, err := cfg.Tape.Float64Open01()
		if err != nil {
			return nil, fmt.Errorf("core: drawing rfire: %w", err)
		}
		mach.rfire = float64(s.fireFloor) + u/s.epsilon // uniform in (floor, floor + 1/ε]
		mach.rfireDefined = true
		if mach.valid {
			mach.count = 1
			mach.seen = mach.bit(1)
		}
	}
	return mach, nil
}

func (sm *SMachine) bit(i graph.ProcID) uint64 { return 1 << uint(i-1) }

func (sm *SMachine) fullSet() uint64 {
	if sm.m == 64 {
		return ^uint64(0)
	}
	return (1 << uint(sm.m)) - 1
}

// Send implements protocol.Machine: the message generation function σ_i
// sends the current state to every neighbor.
func (sm *SMachine) Send(round int, to graph.ProcID) protocol.Message {
	return SMsg{
		RFire:        sm.rfire,
		RFireDefined: sm.rfireDefined,
		Count:        sm.count,
		Seen:         sm.seen,
		Valid:        sm.valid,
	}
}

// Step implements protocol.Machine: PROCESS-MESSAGE(S_i, i) from Figure 1,
// via the sAgg fold shared with the fast state. received is sorted by
// sender, so absorb sees messages in the order the figure reads them.
func (sm *SMachine) Step(round int, received []protocol.Received) error {
	var agg sAgg
	for _, r := range received {
		msg, ok := r.Msg.(SMsg)
		if !ok {
			return fmt.Errorf("core: machine %d received foreign message %T", sm.id, r.Msg)
		}
		st := sState{
			rfire:        msg.RFire,
			rfireDefined: msg.RFireDefined,
			count:        msg.Count,
			seen:         msg.Seen,
			valid:        msg.Valid,
		}
		agg.absorb(&st)
	}
	sm.sState.apply(&agg, sm.id, sm.fullSet())
	return nil
}

// Output implements protocol.Machine: O_i = 1 iff rfire_i ≠ undefined and
// count_i ≥ rfire_i (shifted by the slack for the greedy variants).
func (sm *SMachine) Output() bool { return sm.sState.output(sm.slack) }

// Count exposes count_i for the white-box invariant audit (Lemma 6.3/6.4
// checkers); it is not part of the protocol interface.
func (sm *SMachine) Count() int { return sm.count }

// Valid exposes valid_i for the invariant audit.
func (sm *SMachine) Valid() bool { return sm.valid }

// RFireKnown exposes whether rfire_i ≠ undefined, for the invariant audit.
func (sm *SMachine) RFireKnown() bool { return sm.rfireDefined }

// RFire exposes rfire_i; meaningful only when RFireKnown.
func (sm *SMachine) RFire() float64 { return sm.rfire }

// Seen exposes seen_i as a sorted process list, for the invariant audit.
func (sm *SMachine) Seen() []graph.ProcID {
	out := make([]graph.ProcID, 0, bits.OnesCount64(sm.seen))
	for i := 1; i <= sm.m; i++ {
		if sm.seen&sm.bit(graph.ProcID(i)) != 0 {
			out = append(out, graph.ProcID(i))
		}
	}
	return out
}

// SeenMask exposes seen_i as a bitmask (bit i-1 ⇔ process i).
func (sm *SMachine) SeenMask() uint64 { return sm.seen }
