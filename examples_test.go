package coordattack_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example application end to end and
// checks it exits cleanly with meaningful output. Skipped under -short:
// each `go run` compiles a binary.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are exercised only in full test runs")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("found %d examples, want ≥ 3", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			text := string(out)
			if len(strings.TrimSpace(text)) < 40 {
				t.Errorf("example %s produced almost no output:\n%s", name, text)
			}
			for _, banned := range []string{"panic:", "FAIL", "error:"} {
				if strings.Contains(text, banned) {
					t.Errorf("example %s output contains %q:\n%s", name, banned, text)
				}
			}
		})
	}
}
