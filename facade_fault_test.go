package coordattack_test

import (
	"context"
	"errors"
	"testing"

	"coordattack"
)

// TestFacadeFaultInjection drives the fault subsystem end to end through
// the public facade: plan construction, injection, the crash ≡ link-loss
// equivalence, and Monte-Carlo estimation with a failure budget.
func TestFacadeFaultInjection(t *testing.T) {
	g := coordattack.Pair()
	s, err := coordattack.NewS(0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := coordattack.GoodRun(g, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := coordattack.NewFaultPlan(coordattack.Fault{Proc: 2, Kind: coordattack.CrashStop, Round: 3})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := coordattack.FaultEquivalentRun(r, plan)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := coordattack.Outputs(coordattack.InjectFaults(s, plan), g, r, coordattack.SeedTapes(7))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := coordattack.Outputs(s, g, eq, coordattack.SeedTapes(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if injected[i] != plain[i] {
			t.Errorf("process %d: injected %v ≠ plain-on-equivalent-run %v", i, injected[i], plain[i])
		}
	}
	// The crash sheds liveness, never safety: exact analysis on the
	// equivalent run stays under the Theorem 5.4 ceiling.
	a, err := s.Analyze(g, eq)
	if err != nil {
		t.Fatal(err)
	}
	if a.PTotal > a.Bound+1e-12 {
		t.Errorf("crash-degraded liveness %v exceeds ceiling %v", a.PTotal, a.Bound)
	}

	parsed, err := coordattack.ParseFaultPlan("crash:2@3", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != plan.String() {
		t.Errorf("parsed plan %v ≠ built plan %v", parsed, plan)
	}

	res, err := coordattack.Estimate(coordattack.MCConfig{
		Protocol: s,
		Graph:    g,
		Run:      r,
		Mutator: coordattack.FaultMutator(3, g, r.N(), coordattack.FaultSampleConfig{
			PFault: 0.5,
			Kinds:  []coordattack.FaultKind{coordattack.CrashStop, coordattack.PanicStep},
		}),
		Trials:      500,
		Seed:        1,
		MaxFailures: 500,
		Ctx:         context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Failed != res.Trials {
		t.Errorf("accounting off: %d completed + %d failed ≠ %d trials", res.Completed, res.Failed, res.Trials)
	}

	// Recovered panics classify via the sentinel.
	panicPlan, err := coordattack.NewFaultPlan(coordattack.Fault{Proc: 1, Kind: coordattack.PanicSend, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, perr := coordattack.ConcurrentOutputs(coordattack.InjectFaults(s, panicPlan), g, r, coordattack.SeedTapes(1))
	if !errors.Is(perr, coordattack.ErrMachineFault) {
		t.Errorf("panic not classified as ErrMachineFault: %v", perr)
	}
	var me *coordattack.MachineError
	if !errors.As(perr, &me) || !me.Panicked {
		t.Errorf("panic not surfaced as MachineError: %v", perr)
	}
}
