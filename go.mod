module coordattack

go 1.22
