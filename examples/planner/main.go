// Planner: the paper's tradeoff as a capacity-planning tool.
//
// You are deploying coordinated attack (deadline-bound commit) and must
// pick two numbers: the disagreement risk ε you can stomach, and the
// deadline N you can negotiate. Theorem 5.4 says their product is what
// buys liveness — this example solves the tradeoff in both directions
// with the library's planning API, and replays the proof certificate
// that says no protocol can do better.
//
// Run with:
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	g, err := coordattack.Ring(5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("deployment: 5 datacenters on a ring, coordinated commit, liveness target 99.9%")
	fmt.Println()

	// Direction 1: the deadline is fixed — what risk must we accept?
	fmt.Println("given a deadline, the required disagreement risk ε:")
	for _, n := range []int{10, 20, 50, 100} {
		plan, err := coordattack.RecommendEpsilon(g, n, 0.999)
		if err != nil {
			fmt.Printf("  N=%-4d impossible: %v\n", n, err)
			continue
		}
		fmt.Printf("  N=%-4d ε=%.4f  (good-run level %d, liveness %.3f)\n",
			n, plan.Epsilon, plan.GoodML, plan.Liveness)
	}

	// Direction 2: the risk budget is fixed — what deadline do we need?
	fmt.Println()
	fmt.Println("given a risk budget, the required deadline:")
	for _, eps := range []float64{0.05, 0.01, 0.005} {
		plan, err := coordattack.RecommendRounds(g, eps, 0.999, 600)
		if err != nil {
			fmt.Printf("  ε=%.3f impossible within 600 rounds: %v\n", eps, err)
			continue
		}
		fmt.Printf("  ε=%.3f N=%d rounds\n", eps, plan.Rounds)
	}

	// And the reason no cleverness escapes this price: the lower-bound
	// certificate, replayed on a concrete damaged run.
	fmt.Println()
	s, err := coordattack.NewS(0.01)
	if err != nil {
		log.Fatal(err)
	}
	good, err := coordattack.GoodRun(g, 20, 1, 2, 3, 4, 5)
	if err != nil {
		log.Fatal(err)
	}
	damaged := coordattack.CutAt(good, 12)
	cert, err := coordattack.Certify(s, g, damaged, 1)
	if err != nil {
		log.Fatal(err)
	}
	attack, budget := cert.Bound()
	fmt.Printf("Theorem 5.4, replayed on a run cut at round 12 (%d chain steps):\n", len(cert.Steps))
	fmt.Printf("  Pr[general 1 attacks] = %.4f ≤ ε·L(R) = %.4f — the ceiling is real.\n", attack, budget)
}
