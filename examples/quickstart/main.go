// Quickstart: two generals coordinate an attack over an unreliable link
// using Protocol S (Varghese & Lynch, PODC 1992).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	// Two generals connected by one unreliable link.
	g := coordattack.Pair()

	// Protocol S with agreement parameter ε = 5%: on NO run will the
	// generals disagree with probability above 0.05 (Theorem 6.7).
	s, err := coordattack.NewS(0.05)
	if err != nil {
		log.Fatal(err)
	}

	// A "good" run: both generals receive the attack signal and every
	// message over N = 30 rounds is delivered.
	const n = 30
	good, err := coordattack.GoodRun(g, n, 1, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Exact analysis (no simulation needed): liveness is min(1, ε·ML(R)),
	// where ML(R) is the run's modified information level.
	a, err := s.Analyze(g, good)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good run: ML(R) = %d, Pr[both attack] = %.3f, Pr[disagree] = %.3f\n",
		a.ModMin, a.PTotal, a.PPartial)

	// Simulate one execution: each general gets a private random tape.
	outs, err := coordattack.Outputs(s, g, good, coordattack.SeedTapes(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one execution: general 1 attacks=%v, general 2 attacks=%v → %v\n",
		outs[1], outs[2], coordattack.Classify(outs))

	// Now the adversary kills the link from round 12 on. Liveness
	// degrades gracefully — proportionally to the information that got
	// through — instead of collapsing.
	cut := coordattack.CutAt(good, 12)
	ac, err := s.Analyze(g, cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link cut at round 12: ML(R) = %d, Pr[both attack] = %.3f, Pr[disagree] = %.3f (≤ ε)\n",
		ac.ModMin, ac.PTotal, ac.PPartial)

	// And a Monte-Carlo estimate to confirm the closed form.
	res, err := coordattack.Estimate(coordattack.MCConfig{
		Protocol: s, Graph: g, Run: cut, Trials: 20000, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo (20k trials): Pr[both attack] = %.3f, Pr[disagree] = %.3f\n",
		res.TA.Mean(), res.PA.Mean())
}
