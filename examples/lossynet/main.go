// Lossy network: Protocol S on a six-node ring under the paper's §8
// weak adversary — every message is lost independently with probability
// p, unknown to the protocol.
//
// The strong-adversary lower bound says liveness per unit of unsafety is
// capped by the information level; this example shows how benign random
// loss is by comparison: levels stay high, liveness stays near 1, and
// observed disagreement sits far below the worst-case ε.
//
// Run with:
//
//	go run ./examples/lossynet
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	// N is generous relative to the ring's diameter, so healthy runs
	// saturate liveness (ε·ML ≥ 1) — then disagreement requires the loss
	// pattern to strand one general a level behind at exactly the secret
	// threshold, which blind randomness rarely does.
	const (
		m   = 6
		n   = 48
		eps = 0.1
	)
	g, err := coordattack.Ring(m)
	if err != nil {
		log.Fatal(err)
	}
	s, err := coordattack.NewS(eps)
	if err != nil {
		log.Fatal(err)
	}
	everyone := make([]coordattack.ProcID, m)
	for i := range everyone {
		everyone[i] = coordattack.ProcID(i + 1)
	}

	fmt.Printf("ring of %d generals, N=%d rounds, ε=%.2f, iid loss probability p\n\n", m, n, eps)
	fmt.Printf("%-8s %-12s %-14s %-16s %-12s\n", "loss p", "E[ML(R)]", "Pr[all attack]", "Pr[disagree]", "worst-case ε")

	for _, p := range []float64{0, 0.02, 0.05, 0.10, 0.20, 0.40} {
		res, err := coordattack.Estimate(coordattack.MCConfig{
			Protocol: s, Graph: g,
			Sampler: coordattack.WeakSampler(g, n, p, everyone...),
			Trials:  4000, Seed: uint64(1000 * p),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Estimate the mean modified level of the lossy runs directly.
		tape := coordattack.NewStream(99).Tape(uint64(1000*p), 0)
		mlSum, samples := 0, 200
		for t := 0; t < samples; t++ {
			r, err := coordattack.RandomLossRun(g, n, p, tape, everyone...)
			if err != nil {
				log.Fatal(err)
			}
			ml, err := coordattack.RunModLevel(r, m)
			if err != nil {
				log.Fatal(err)
			}
			mlSum += ml
		}
		fmt.Printf("%-8.2f %-12.1f %-14.3f %-16.4f %-12.2f\n",
			p, float64(mlSum)/float64(samples), res.TA.Mean(), res.PA.Mean(), eps)
	}

	fmt.Println()
	fmt.Println("random loss shrinks the information level slowly (the ring reroutes around")
	fmt.Println("holes), so liveness stays saturated until loss is extreme — and disagreement")
	fmt.Println("needs the loss to land in a one-unit window around the secret threshold,")
	fmt.Println("which blind randomness almost never manages. The strong adversary's power")
	fmt.Println("is aim, not volume.")
}
