// Commit with a deadline: the paper's §1 motivation, as code.
//
// Two database nodes must commit or abort a transaction within a hard
// real-time budget — say 10 communication rounds — over a line that may
// drop anything. Standard commit protocols block ("uncertain") when the
// line dies; the paper shows the best you can buy is a quantified gamble:
// with disagreement risk ε, the probability both sides commit on a run R
// is at most ε·L(R) — and Protocol S achieves it.
//
// This example prices that gamble: for several deadlines it reports the
// disagreement risk you must accept to get commit probability ~1 on a
// healthy line (ε ≈ 1/N), and what happens when the line degrades.
//
// Run with:
//
//	go run ./examples/commitdeadline
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	g := coordattack.Pair()
	fmt.Println("deadline-bound commit over an unreliable line (Protocol S)")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-22s %-22s\n", "deadline N", "ε needed", "Pr[commit] healthy", "Pr[commit] flaky(10% loss)")

	for _, n := range []int{10, 50, 200, 1000} {
		// To reach commit probability 1 on a healthy line we need
		// ε·ML(R_good) ≥ 1; ML(R_good) = N on K_2, so ε = 1/N: the
		// Theorem 5.4 tradeoff (L/U ≤ N) made concrete — a tighter
		// deadline means more disagreement risk.
		eps := 1.0 / float64(n)
		s, err := coordattack.NewS(eps)
		if err != nil {
			log.Fatal(err)
		}
		good, err := coordattack.GoodRun(g, n, 1, 2)
		if err != nil {
			log.Fatal(err)
		}
		healthy, err := s.Analyze(g, good)
		if err != nil {
			log.Fatal(err)
		}
		// A flaky line: 10% iid loss (the paper's weak adversary).
		flaky, err := coordattack.Estimate(coordattack.MCConfig{
			Protocol: s, Graph: g,
			Sampler: coordattack.WeakSampler(g, n, 0.10, 1, 2),
			Trials:  5000, Seed: uint64(n),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12.4f %-22.3f %-22.3f\n",
			n, eps, healthy.PTotal, flaky.TA.Mean())
	}

	fmt.Println()
	fmt.Println("the tradeoff, in money terms: halving the acceptable disagreement risk")
	fmt.Println("doubles the deadline you must negotiate — L/U ≤ N is not an artifact of")
	fmt.Println("Protocol S but a bound on every protocol (Theorem 5.4). If the line is")
	fmt.Println("merely lossy rather than adversarial, liveness barely suffers (§8).")
}
