// Asynchronous generals: the paper's §8 remark that the results extend
// to an asynchronous model, demonstrated end to end.
//
// Here there are no shared rounds: each general runs on its own clock
// behind a timeout synchronizer (advance when all neighbor messages for
// the current round are in, or after τ ticks), and the network chooses a
// latency — or a drop — for every message. Each such execution *induces*
// a synchronous run, and every theorem of the paper applies to it:
// latency attacks can slow coordination down (lower the information
// level), but can never push disagreement past ε.
//
// Run with:
//
//	go run ./examples/asyncgenerals
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	const (
		n   = 12
		eps = 0.1
	)
	g, err := coordattack.Ring(4)
	if err != nil {
		log.Fatal(err)
	}
	s, err := coordattack.NewS(eps)
	if err != nil {
		log.Fatal(err)
	}
	inputs := []coordattack.ProcID{1, 2, 3, 4}

	fmt.Printf("4 generals on a ring, %d synchronizer rounds, ε=%.2f\n", n, eps)
	fmt.Printf("network: latency uniform in [1,5] ticks, 5%% drops — sweep the timeout τ\n\n")
	fmt.Printf("%-9s %-14s %-14s %-18s %-14s\n",
		"τ", "ML(induced)", "Pr[all attack]", "Pr[disagree]", "finish time")

	tape := coordattack.NewStream(2024).Tape(0, 0)
	for _, tau := range []int{1, 2, 3, 5, 8} {
		lat, err := coordattack.RandomLatency(1, 5, 0.05, tape.Fork(uint64(tau)))
		if err != nil {
			log.Fatal(err)
		}
		cfg := coordattack.AsyncConfig{
			G: g, N: n, Timeout: tau, Latency: lat, Inputs: inputs,
		}
		induced, enter, err := coordattack.AsyncInducedRun(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a, err := s.Analyze(g, induced)
		if err != nil {
			log.Fatal(err)
		}
		finish := 0
		for i := 1; i <= 4; i++ {
			if t := enter[i][n+1]; t > finish {
				finish = t
			}
		}
		fmt.Printf("%-9d %-14d %-14.3f %-18.3f %-14d\n",
			tau, a.ModMin, a.PTotal, a.PPartial, finish)
	}

	fmt.Println()
	fmt.Println("a small τ races ahead of the network and loses most messages (low level,")
	fmt.Println("low liveness); a large τ waits the stragglers out and recovers the")
	fmt.Println("synchronous good run. Disagreement never exceeds ε at any τ: in the")
	fmt.Println("asynchronous world too, the adversary can only starve liveness.")

	// One concrete asynchronous execution, for flavor.
	lat, err := coordattack.RandomLatency(1, 5, 0.05, tape.Fork(99))
	if err != nil {
		log.Fatal(err)
	}
	res, err := coordattack.AsyncExecute(s, coordattack.AsyncConfig{
		G: g, N: n, Timeout: 3, Latency: lat, Inputs: inputs,
	}, coordattack.SeedTapes(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none execution at τ=3: outputs %v → %v (induced |M| = %d of %d)\n",
		res.Outputs[1:], res.Outcome(), res.Induced.NumDeliveries(), 2*g.NumEdges()*n)
}
