// Two generals, two protocols: the §3 story of the paper.
//
// Protocol A relays a single packet back and forth and attacks if the
// relay survives past a secret random round; it is perfectly live on a
// reliable link but dies the moment one packet is lost. Protocol S counts
// information levels and attacks with probability proportional to what
// got through. This example sweeps the adversary's cut round and prints
// both protocols' exact outcome distributions side by side.
//
// Run with:
//
//	go run ./examples/twogenerals
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	const (
		n   = 10
		eps = 0.1
	)
	g := coordattack.Pair()
	s, err := coordattack.NewS(eps)
	if err != nil {
		log.Fatal(err)
	}
	good, err := coordattack.GoodRun(g, n, 1, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("two generals, N=%d rounds, ε=%.2f — adversary cuts the link at round c\n\n", n, eps)
	fmt.Printf("%-10s  %-28s  %-28s\n", "", "Protocol A", fmt.Sprintf("Protocol S (ε=%.2f)", eps))
	fmt.Printf("%-10s  %-8s %-9s %-9s  %-8s %-9s %-9s\n",
		"cut round", "TA", "disagree", "silent", "TA", "disagree", "silent")

	for c := 1; c <= n+1; c++ {
		r := good
		label := "never"
		if c <= n {
			r = coordattack.CutAt(good, c)
			label = fmt.Sprintf("c=%d", c)
		}
		// Protocol A: simulate 20k executions (its exact analysis lives
		// in the internal baseline package; examples stick to the public
		// surface and measure instead).
		resA, err := coordattack.Estimate(coordattack.MCConfig{
			Protocol: coordattack.NewA(), Graph: g, Run: r, Trials: 20000, Seed: uint64(c),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Protocol S: exact closed form.
		aS, err := s.Analyze(g, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %-8.3f %-9.3f %-9.3f  %-8.3f %-9.3f %-9.3f\n",
			label,
			resA.TA.Mean(), resA.PA.Mean(), resA.NA.Mean(),
			aS.PTotal, aS.PPartial, aS.PNone)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - Protocol A: whichever round c ≥ 2 the adversary cuts, it hits the secret")
	fmt.Println("    rfire with probability exactly 1/(N-1) — that is U_s(A). Liveness is the")
	fmt.Println("    all-or-nothing Pr[rfire < c]: early cuts zero it entirely.")
	fmt.Println("  - Protocol S: liveness climbs smoothly with the cut round (more information")
	fmt.Println("    through = higher level), and disagreement never exceeds ε on any run.")
}
