// Many generals, many topologies: how the shape of the network buys (or
// costs) coordinated-attack liveness.
//
// Information levels rise roughly once per "diameter's worth" of rounds,
// so for the same deadline a complete graph reaches far higher levels
// than a line — and Protocol S's liveness min(1, ε·ML(R)) inherits the
// difference. This example also demonstrates the Lemma A.6 tree run, the
// run on which every topology is equally poor (ML = 1).
//
// Run with:
//
//	go run ./examples/multigeneral
package main

import (
	"fmt"
	"log"

	"coordattack"
)

func main() {
	const (
		m   = 8
		n   = 16
		eps = 1.0 / n
	)
	s, err := coordattack.NewS(eps)
	if err != nil {
		log.Fatal(err)
	}

	type topo struct {
		name  string
		build func() (*coordattack.Graph, error)
	}
	topos := []topo{
		{"complete", func() (*coordattack.Graph, error) { return coordattack.Complete(m) }},
		{"star", func() (*coordattack.Graph, error) { return coordattack.Star(m) }},
		{"ring", func() (*coordattack.Graph, error) { return coordattack.Ring(m) }},
		{"line", func() (*coordattack.Graph, error) { return coordattack.Line(m) }},
	}

	fmt.Printf("%d generals, N=%d rounds, ε=%.3f, all signaled, all messages delivered\n\n", m, n, eps)
	fmt.Printf("%-10s %-6s %-10s %-8s %-8s %-16s %-14s\n",
		"topology", "edges", "diameter", "ML(R)", "L(R)", "Pr[all attack]", "bound ε·L(R)")

	for _, tp := range topos {
		g, err := tp.build()
		if err != nil {
			log.Fatal(err)
		}
		inputs := make([]coordattack.ProcID, m)
		for i := range inputs {
			inputs[i] = coordattack.ProcID(i + 1)
		}
		good, err := coordattack.GoodRun(g, n, inputs...)
		if err != nil {
			log.Fatal(err)
		}
		a, err := s.Analyze(g, good)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-6d %-10d %-8d %-8d %-16.3f %-14.3f\n",
			tp.name, g.NumEdges(), g.Diameter(), a.ModMin, a.LevelMin, a.PTotal, a.Bound)
	}

	// The equalizer: the spanning-tree run of Lemma A.6. Information only
	// flows away from general 1, so every topology bottoms out at ML = 1
	// and liveness exactly ε — the pivot of the paper's second lower bound.
	fmt.Println()
	fmt.Println("the Lemma A.6 tree run (information flows only down a spanning tree):")
	for _, tp := range topos {
		g, err := tp.build()
		if err != nil {
			log.Fatal(err)
		}
		tree, err := coordattack.TreeRun(g, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		a, err := s.Analyze(g, tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s ML(R) = %d, Pr[all attack] = %.3f (= ε)\n", tp.name, a.ModMin, a.PTotal)
	}
}
