// Package coordattack is a complete Go implementation of randomized
// coordinated attack as defined by Varghese & Lynch, "A Tradeoff Between
// Safety and Liveness for Randomized Coordinated Attack Protocols"
// (PODC 1992).
//
// It provides the paper's model (synchronous rounds over an unreliable
// message graph, runs as first-class data), the optimal Protocol S with
// its exact analysis, the §3 baseline Protocol A, the information-level
// machinery behind the paper's tight L/U ≤ L(R) tradeoff bound, strong-
// and weak-adversary tooling, and a Monte-Carlo harness. This root
// package is a facade over the internal packages; it exposes everything a
// downstream user needs to build and evaluate coordinated-attack
// protocols:
//
//	g := coordattack.Pair()                         // two generals
//	s, _ := coordattack.NewS(0.01)                  // Protocol S, ε = 1%
//	r, _ := coordattack.GoodRun(g, 100, 1, 2)       // reliable run, both signaled
//	a, _ := s.Analyze(g, r)                         // exact: Pr[TA] = min(1, ε·ML(R))
//	outs, _ := coordattack.Outputs(s, g, r, coordattack.SeedTapes(7))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced claim.
package coordattack

import (
	"coordattack/internal/adversary"
	"coordattack/internal/async"
	"coordattack/internal/baseline"
	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/impossibility"
	"coordattack/internal/lowerbound"
	"coordattack/internal/mc"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// Model types.
type (
	// Graph is the undirected communication graph G(V, E) of generals.
	Graph = graph.G
	// Edge is an undirected edge between two generals.
	Edge = graph.Edge
	// ProcID identifies a general (1..m); 0 is the environment node v₀.
	ProcID = graph.ProcID
	// Run is R = I(R) ∪ M(R): the inputs and delivered messages of one run.
	Run = run.Run
	// Delivery is one (from, to, round) tuple of M(R).
	Delivery = run.Delivery
	// Protocol is a factory of per-general state machines F_i.
	Protocol = protocol.Protocol
	// Machine is one local state machine F_i.
	Machine = protocol.Machine
	// Message is an opaque protocol message.
	Message = protocol.Message
	// Received pairs a delivered message with its sender.
	Received = protocol.Received
	// Config is what a machine knows at start (id, graph, N, input, tape).
	Config = protocol.Config
	// Outcome classifies an execution: NoAttack, TotalAttack, PartialAttack.
	Outcome = protocol.Outcome
	// Execution is a full trace (E_i) of one protocol execution.
	Execution = protocol.Execution
	// Tape is one general's private random input α_i.
	Tape = rng.Tape
	// Stream derives independent tapes for (trial, process) labels.
	Stream = rng.Stream
	// Tapes supplies the tape for each general.
	Tapes = sim.Tapes
)

// Outcome values.
const (
	NoAttack      = protocol.NoAttack
	TotalAttack   = protocol.TotalAttack
	PartialAttack = protocol.PartialAttack
)

// Protocols.
type (
	// S is the paper's optimal Protocol S (§6).
	S = core.S
	// SMachine is Protocol S's local machine, with white-box inspection.
	SMachine = core.SMachine
	// RunAnalysis is the exact outcome distribution of Protocol S on a run.
	RunAnalysis = core.RunAnalysis
	// A is the §3 two-general example protocol.
	A = baseline.A
	// RepeatedA is the §3 "run A several times" amplification.
	RepeatedA = baseline.RepeatedA
)

// NewS returns Protocol S with agreement parameter 0 < ε ≤ 1 (Theorem
// 6.7: U_s(S) ≤ ε; Theorem 6.8: L(S,R) = min(1, ε·ML(R))).
func NewS(epsilon float64) (*S, error) { return core.NewS(epsilon) }

// NewSWithSlack returns the slack-k variant of Protocol S used to exhibit
// the Theorem A.1 tradeoff; slack 0 is Protocol S itself.
func NewSWithSlack(epsilon float64, slack int) (*S, error) {
	return core.NewSWithSlack(epsilon, slack)
}

// NewSAltValidity returns the footnote-1 variant S′ that satisfies the
// alternative validity condition ("no messages delivered ⇒ nobody
// attacks") at a cost of one level of liveness.
func NewSAltValidity(epsilon float64) (*S, error) { return core.NewSAltValidity(epsilon) }

// NewA returns the §3 example Protocol A for two generals
// (U_s(A) = 1/(N-1), L(A, R_good) = 1).
func NewA() A { return baseline.NewA() }

// Graph constructors.

// NewGraph builds a graph on m vertices with the given edges.
func NewGraph(m int, edges []Edge) (*Graph, error) { return graph.New(m, edges) }

// Pair returns K_2, the classic two-generals topology.
func Pair() *Graph { return graph.Pair() }

// Complete returns the complete graph K_m.
func Complete(m int) (*Graph, error) { return graph.Complete(m) }

// Ring returns the m-cycle (m ≥ 3).
func Ring(m int) (*Graph, error) { return graph.Ring(m) }

// Line returns the m-vertex path.
func Line(m int) (*Graph, error) { return graph.Line(m) }

// Star returns the star with center 1 and m-1 leaves.
func Star(m int) (*Graph, error) { return graph.Star(m) }

// Run constructors.

// NewRun returns an empty run over n rounds.
func NewRun(n int) (*Run, error) { return run.New(n) }

// GoodRun returns the fully reliable run with the given inputs.
func GoodRun(g *Graph, n int, inputs ...ProcID) (*Run, error) {
	return run.Good(g, n, inputs...)
}

// SilentRun returns a run with inputs but no deliveries.
func SilentRun(n int, inputs ...ProcID) (*Run, error) { return run.Silent(n, inputs...) }

// CutAt removes every delivery in rounds ≥ round — the "links crash at
// round" adversary.
func CutAt(r *Run, round int) *Run { return run.CutAt(r, round) }

// TreeRun returns the Lemma A.6 spanning-tree run with ML(R) = 1.
func TreeRun(g *Graph, n int, root ProcID) (*Run, error) { return run.Tree(g, n, root) }

// RandomLossRun draws a run from the §8 weak adversary: each message lost
// independently with probability p.
func RandomLossRun(g *Graph, n int, p float64, tape *Tape, inputs ...ProcID) (*Run, error) {
	return run.RandomLoss(g, n, p, tape, inputs...)
}

// Execution.

// SeedTapes derives per-general tapes from one seed.
func SeedTapes(seed uint64) Tapes { return sim.SeedTapes(seed) }

// NewStream returns a labeled tape family rooted at seed.
func NewStream(seed uint64) Stream { return rng.NewStream(seed) }

// Outputs executes the protocol on the run (fast loop engine) and returns
// the decision vector, index 1..m.
func Outputs(p Protocol, g *Graph, r *Run, tapes Tapes) ([]bool, error) {
	return sim.Outputs(p, g, r, tapes)
}

// Execute is Outputs with a full execution trace.
func Execute(p Protocol, g *Graph, r *Run, tapes Tapes) (*Execution, error) {
	return sim.Execute(p, g, r, tapes)
}

// ConcurrentOutputs executes with one goroutine per general and channel
// messaging; semantics are identical to Outputs.
func ConcurrentOutputs(p Protocol, g *Graph, r *Run, tapes Tapes) ([]bool, error) {
	return sim.ConcurrentOutputs(p, g, r, tapes)
}

// Classify maps a decision vector to its outcome.
func Classify(outputs []bool) Outcome { return protocol.Classify(outputs) }

// Information levels (§4, §6).

// Levels returns the final information levels L_i(R), index 1..m.
func Levels(r *Run, m int) ([]int, error) { return causality.Levels(r, m) }

// ModLevels returns the final modified levels ML_i(R), index 1..m.
func ModLevels(r *Run, m int) ([]int, error) { return causality.ModLevels(r, m) }

// RunLevel returns L(R) = min_i L_i(R), the quantity that caps liveness
// in Theorem 5.4.
func RunLevel(r *Run, m int) (int, error) { return causality.RunLevel(r, m) }

// RunModLevel returns ML(R) = min_i ML_i(R), the quantity Protocol S's
// liveness is proportional to (Theorem 6.8).
func RunModLevel(r *Run, m int) (int, error) { return causality.RunModLevel(r, m) }

// Clip returns Clip_i(R), the run keeping exactly the tuples whose
// receipt flows to (i, N) (Lemma 4.2).
func Clip(r *Run, m int, i ProcID) *Run { return causality.Clip(r, m, i) }

// TradeoffBound is the Theorem 5.4 ceiling min(1, ε·level) on liveness.
func TradeoffBound(epsilon float64, level int) float64 {
	return core.TradeoffBound(epsilon, level)
}

// Estimation and adversaries.

// MCConfig configures a Monte-Carlo estimation job. Set Ctx for
// cancellation/deadline support, MaxFailures for a failure budget
// (failed trials are counted in the Result instead of aborting the
// job), and Mutator for per-trial protocol transforms such as fault
// injection.
type MCConfig = mc.Config

// MCResult is a Monte-Carlo estimate of the outcome distribution, with
// Completed/Failed trial accounting.
type MCResult = mc.Result

// MCMutator transforms the protocol per trial — FaultMutator is the
// canonical instance.
type MCMutator = mc.Mutator

// Estimate runs a Monte-Carlo job; results are deterministic in the
// seed, whatever the worker count. When the job is cancelled or its
// failure budget is exhausted it returns the partial Result together
// with a joined error.
func Estimate(cfg MCConfig) (*MCResult, error) { return mc.Estimate(cfg) }

// WeakSampler is the §8 weak adversary as a run sampler for Estimate.
func WeakSampler(g *Graph, n int, p float64, inputs ...ProcID) mc.RunSampler {
	return adversary.WeakSampler(g, n, p, inputs...)
}

// Fault injection (internal/fault): deterministic process faults beyond
// the paper's link adversary. Non-Byzantine faults (crash, omission,
// stutter) preserve Validity and Agreement(ε) and only shed liveness —
// the Theorem 5.4 tradeoff exercised from the process side.

type (
	// FaultKind enumerates injectable fault behaviors (CrashStop,
	// OmitRound, Stutter, GarbageMessage, NilSend, PanicSend, PanicStep,
	// DecisionFlip).
	FaultKind = fault.Kind
	// Fault is one injected fault: process, kind, round.
	Fault = fault.Fault
	// FaultPlan is the deterministic fault schedule of one execution.
	FaultPlan = fault.Plan
	// FaultSampleConfig tunes random fault-plan generation.
	FaultSampleConfig = fault.SampleConfig
	// MachineError is how the engines report a machine failure —
	// including recovered panics — instead of crashing or deadlocking.
	MachineError = sim.MachineError
)

// Fault kinds.
const (
	CrashStop      = fault.CrashStop
	OmitRound      = fault.OmitRound
	Stutter        = fault.Stutter
	GarbageMessage = fault.GarbageMessage
	NilSend        = fault.NilSend
	PanicSend      = fault.PanicSend
	PanicStep      = fault.PanicStep
	DecisionFlip   = fault.DecisionFlip
)

// ErrMachineFault classifies engine failures: errors.Is(err,
// ErrMachineFault) is true for every MachineError an engine returns.
var ErrMachineFault = sim.ErrMachineFault

// NewFaultPlan builds a validated fault plan.
func NewFaultPlan(faults ...Fault) (*FaultPlan, error) { return fault.NewPlan(faults...) }

// ParseFaultPlan parses a CLI fault spec such as "crash:2@4,flip:1" for
// a graph of m processes over n rounds.
func ParseFaultPlan(spec string, m, n int) (*FaultPlan, error) { return fault.Parse(spec, m, n) }

// SampleFaultPlan derives a plan from (seed, trial): the same label
// always yields the same faults, whatever the worker count.
func SampleFaultPlan(seed, trial uint64, g *Graph, n int, cfg FaultSampleConfig) (*FaultPlan, error) {
	return fault.Sample(seed, trial, g, n, cfg)
}

// InjectFaults wraps a protocol so its machines express the plan's
// faults; an empty plan returns the protocol unchanged.
func InjectFaults(p Protocol, plan *FaultPlan) Protocol { return fault.Inject(p, plan) }

// FaultMutator plugs per-trial sampled fault plans into MCConfig.Mutator.
func FaultMutator(seed uint64, g *Graph, n int, cfg FaultSampleConfig) MCMutator {
	return fault.Mutator(seed, g, n, cfg)
}

// FaultEquivalentRun folds omission-equivalent faults (crash, omit,
// garbage) into the run: injecting them equals executing the plain
// protocol on the returned run.
func FaultEquivalentRun(r *Run, plan *FaultPlan) (*Run, error) {
	return fault.EquivalentRun(r, plan)
}

// Asynchronous model (§8's extension), via the timeout synchronizer.

// AsyncConfig describes one asynchronous execution: a graph, a number of
// synchronizer rounds, the timeout τ, the latency adversary, and the
// inputs.
type AsyncConfig = async.Config

// AsyncResult carries the decision vector, the induced synchronous run,
// and the per-process round entry times.
type AsyncResult = async.Result

// Latency is the asynchronous adversary: per-message virtual latency or
// drop.
type Latency = async.Latency

// FixedLatency delays every message by the same number of ticks.
func FixedLatency(ticks int) Latency { return async.FixedLatency(ticks) }

// RandomLatency draws iid latencies from [lo, hi] with drop probability
// dropP.
func RandomLatency(lo, hi int, dropP float64, tape *Tape) (Latency, error) {
	return async.RandomLatency(lo, hi, dropP, tape)
}

// AsyncInducedRun computes the synchronous run induced by an asynchronous
// timing structure — the reduction that carries every theorem of the
// paper over to the asynchronous model.
func AsyncInducedRun(cfg AsyncConfig) (*Run, [][]int, error) { return async.InducedRun(cfg) }

// AsyncExecute runs a protocol asynchronously under the timeout
// synchronizer (via the induced-run reduction).
func AsyncExecute(p Protocol, cfg AsyncConfig, tapes Tapes) (*AsyncResult, error) {
	return async.Execute(p, cfg, tapes)
}

// AsyncEventExecute runs the protocol through the discrete-event
// simulator — a genuine event-queue executor with per-general clocks.
// Property-tested identical to AsyncExecute.
func AsyncEventExecute(p Protocol, cfg AsyncConfig, tapes Tapes) (*AsyncResult, error) {
	return async.EventExecute(p, cfg, tapes)
}

// Deployment planning (the tradeoff, solved for each variable).

// Plan is a parameter recommendation derived from the exact formulas.
type Plan = core.Plan

// RecommendEpsilon returns the smallest ε reaching the liveness target on
// the good run within n rounds.
func RecommendEpsilon(g *Graph, n int, target float64) (*Plan, error) {
	return core.RecommendEpsilon(g, n, target)
}

// RecommendRounds returns the smallest horizon reaching the liveness
// target at the given ε — or an error when Theorem 5.4 forbids it.
func RecommendRounds(g *Graph, epsilon, target float64, maxN int) (*Plan, error) {
	return core.RecommendRounds(g, epsilon, target, maxN)
}

// UsualCase checks Appendix A's usual-case assumption (connected,
// diameter ≤ N, ε < 0.5).
func UsualCase(g *Graph, n int, epsilon float64) error { return core.UsualCase(g, n, epsilon) }

// Certificate is an executable replay of the Theorem 5.4 proof chain.
type Certificate = lowerbound.Certificate

// Certify replays the Lemma 5.3 induction for Protocol S on (g, r) from
// process i, verifying each step numerically.
func Certify(s *S, g *Graph, r *Run, i ProcID) (*Certificate, error) {
	return lowerbound.Certify(s, g, r, i)
}

// Violation is the constructive witness the chain argument produces.
type Violation = impossibility.Violation

// FindViolation runs the deterministic-impossibility chain argument
// ([G], [HM]) and returns a run on which the protocol disagrees.
func FindViolation(p Protocol, g *Graph, n int) (*Violation, error) {
	return impossibility.FindViolation(p, g, n)
}
