package main

import (
	"strings"
	"testing"
)

func TestExploreTreeRun(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-graph", "ring:5", "-rounds", "6", "-run", "tree"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"levels L_i^r(R)", "modified levels", "ML(R) = 1", "causal independence"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExploreClips(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-graph", "pair", "-rounds", "3", "-run", "good", "-clips"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "Clip_1(R)") || !strings.Contains(b.String(), "Clip_2(R)") {
		t.Errorf("clips missing:\n%s", b.String())
	}
}

func TestExploreIndependenceShown(t *testing.T) {
	// Input at 1, no deliveries: every pair of distinct generals is
	// causally independent.
	var b strings.Builder
	code := run([]string{"-graph", "ring:3", "-rounds", "3", "-run", "silent", "-inputs", "1"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "I") {
		t.Errorf("independence matrix missing I entries:\n%s", b.String())
	}
}

func TestExploreKnowledge(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-graph", "pair", "-rounds", "2", "-run", "cut:2", "-knowledge"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "knowledge depths") {
		t.Errorf("knowledge table missing:\n%s", b.String())
	}
	// Too-large space: runtime error.
	var big strings.Builder
	if code := run([]string{"-graph", "complete:4", "-rounds", "3", "-knowledge"}, &big); code != 1 {
		t.Errorf("huge knowledge space exit code %d, want 1", code)
	}
}

func TestExploreCertify(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-graph", "pair", "-rounds", "4", "-run", "cut:3", "-certify", "0.1"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	for _, want := range []string{"Theorem 5.4 certificate", "certified: Pr[D_1|R]"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q:\n%s", want, b.String())
		}
	}
	var bad strings.Builder
	if code := run([]string{"-graph", "pair", "-rounds", "4", "-certify", "7"}, &bad); code != 2 {
		t.Errorf("ε=7 exit code %d, want 2", code)
	}
}

func TestExploreBadSpecs(t *testing.T) {
	cases := [][]string{
		{"-graph", "zzz"},
		{"-run", "zzz"},
		{"-inputs", "zz"},
		{"-zzz"},
	}
	for _, args := range cases {
		var b strings.Builder
		if code := run(args, &b); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
	// m=1 graph: level tables need m ≥ 2 → runtime error path.
	var b strings.Builder
	if code := run([]string{"-graph", "line:1", "-rounds", "2"}, &b); code != 1 {
		t.Errorf("line:1 exit code %d, want 1", code)
	}
}
