// Command runexplore inspects the information structure of a run: the
// per-process levels L_i and modified levels ML_i by round, the clipped
// runs Clip_i(R), and the causal-independence matrix of Appendix A —
// the quantities the paper's bounds are made of.
//
// Usage:
//
//	runexplore -graph ring:5 -rounds 6 -run tree
//	runexplore -graph pair -rounds 8 -run cut:4 -clips
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coordattack/internal/causality"
	"coordattack/internal/cliutil"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/knowledge"
	"coordattack/internal/lowerbound"
	"coordattack/internal/table"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("runexplore", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "pair", "graph spec")
		rounds    = fs.Int("rounds", 8, "number of protocol rounds N")
		runSpec   = fs.String("run", "good", "run spec")
		inputSpec = fs.String("inputs", "all", "input spec")
		seed      = fs.Uint64("seed", 1, "seed for random specs")
		clips     = fs.Bool("clips", false, "print Clip_i(R) for every process")
		epistemic = fs.Bool("knowledge", false, "compute Halpern-Moses knowledge depths (small spaces only)")
		certify   = fs.Float64("certify", 0, "replay the Theorem 5.4 proof chain for process 1 at this ε")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	g, err := cliutil.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	inputs, err := cliutil.ParseInputs(*inputSpec, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := cliutil.ParseRun(*runSpec, g, *rounds, inputs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	m := g.NumVertices()
	fmt.Fprintf(out, "graph: %v\nrun:   %v\n\n", g, r)

	lt, err := causality.NewLevelTable(r, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	mt, err := causality.NewModLevelTable(r, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cols := []string{"process"}
	for round := 0; round <= r.N(); round++ {
		cols = append(cols, fmt.Sprintf("r%d", round))
	}
	levels := table.New("levels L_i^r(R)", cols...)
	mlevels := table.New("modified levels ML_i^r(R)", cols...)
	for i := 1; i <= m; i++ {
		lrow := []string{table.I(i)}
		mrow := []string{table.I(i)}
		for round := 0; round <= r.N(); round++ {
			lrow = append(lrow, table.I(lt.At(graph.ProcID(i), round)))
			mrow = append(mrow, table.I(mt.At(graph.ProcID(i), round)))
		}
		levels.AddRow(lrow...)
		mlevels.AddRow(mrow...)
	}
	fmt.Fprintln(out, levels.Render())
	fmt.Fprintln(out, mlevels.Render())
	fmt.Fprintf(out, "L(R) = %d, ML(R) = %d, max ML_i = %d\n\n", lt.Min(), mt.Min(), mt.Max())

	indep := table.New("causal independence (Appendix A): '.' linked, 'I' independent", append([]string{"i\\j"}, procHeaders(m)...)...)
	for i := 1; i <= m; i++ {
		row := []string{table.I(i)}
		for j := 1; j <= m; j++ {
			cell := "."
			if i != j && causality.CausallyIndependent(r, m, graph.ProcID(i), graph.ProcID(j)) {
				cell = "I"
			}
			row = append(row, cell)
		}
		indep.AddRow(row...)
	}
	fmt.Fprintln(out, indep.Render())

	if *clips {
		for i := 1; i <= m; i++ {
			clip := causality.Clip(r, m, graph.ProcID(i))
			fmt.Fprintf(out, "Clip_%d(R) = %v\n", i, clip)
		}
	}
	if *certify > 0 {
		s, err := core.NewS(*certify)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cert, err := lowerbound.Certify(s, g, r, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprint(out, cert.String())
		attack, budget := cert.Bound()
		fmt.Fprintf(out, "certified: Pr[D_1|R] = %.4f ≤ ε·L_1(R) = %.4f\n\n", attack, budget)
	}
	if *epistemic {
		space, err := knowledge.NewSpace(g, r.N())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		kt := table.New(fmt.Sprintf("knowledge depths over %d-run space (must equal L_i)", space.Size()),
			"process", "depth of K_i E^(h-1)(input)", "L_i(R)")
		lt2, err := causality.NewLevelTable(r, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for i := 1; i <= m; i++ {
			depth, err := space.Depth(graph.ProcID(i), knowledge.InputArrived, r)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			kt.AddRow(table.I(i), table.I(depth), table.I(lt2.Final(graph.ProcID(i))))
		}
		fmt.Fprintln(out, kt.Render())
	}
	return 0
}

func procHeaders(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = table.I(i + 1)
	}
	return out
}
