package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"coordattack/internal/service"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// retryClient retries overload responses (429 queue-full, 503 draining)
// with jittered exponential backoff, honoring the server's Retry-After
// header when it asks for a longer wait. Attempts are capped: a daemon
// that stays slammed eventually surfaces its structured overload error
// instead of blocking the bench forever. Each sleep counts toward the
// summary (retries/waited) so backpressure is visible in the output.
type retryClient struct {
	c           *http.Client
	maxAttempts int
	base        time.Duration // first backoff step
	maxDelay    time.Duration // exponential cap
	maxHonor    time.Duration // Retry-After cap, keeps the bench responsive
	sleep       func(time.Duration)
	jitter      func() float64 // uniform [0,1); ×[0.5,1.5) spread on each delay

	retries int
	waited  time.Duration
}

func newRetryClient() *retryClient {
	return &retryClient{
		c:           &http.Client{Timeout: 30 * time.Second},
		maxAttempts: 6,
		base:        250 * time.Millisecond,
		maxDelay:    4 * time.Second,
		maxHonor:    15 * time.Second,
		sleep:       time.Sleep,
		jitter:      rand.Float64,
	}
}

// do issues req until it returns a non-overload response or attempts
// run out; the final response is returned unconsumed either way, so
// callers surface the server's structured error body. req is called
// fresh per attempt (request bodies cannot be replayed).
func (rc *retryClient) do(req func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := req()
		if err != nil {
			return nil, err
		}
		if (resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) ||
			attempt >= rc.maxAttempts {
			return resp, nil
		}
		delay := rc.delay(attempt, resp.Header.Get("Retry-After"))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rc.retries++
		rc.waited += delay
		rc.sleep(delay)
	}
}

// delay computes the wait before the next attempt: exponential from
// base with ×[0.5,1.5) jitter (so a fleet of benches does not retry in
// lockstep), raised to the server's Retry-After when that asks for
// more, both capped.
func (rc *retryClient) delay(attempt int, retryAfter string) time.Duration {
	d := rc.base << (attempt - 1)
	if d > rc.maxDelay {
		d = rc.maxDelay
	}
	d = time.Duration(float64(d) * (0.5 + rc.jitter()))
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	if d > rc.maxHonor {
		d = rc.maxHonor
	}
	return d
}

// runServer is coordbench's client mode: it submits a sweep spec to a
// running coordd, polls the aggregate status until every cell settles,
// and renders the rolled-up tradeoff table. Exit status is nonzero when
// any cell failed or was cancelled.
func runServer(base, sweepArg string, priority int, timeout time.Duration, out io.Writer) int {
	if sweepArg == "" {
		fmt.Fprintln(os.Stderr, "coordbench: -server needs -sweep JSON|@file")
		return 2
	}
	raw, err := loadSweepSpec(sweepArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordbench:", err)
		return 2
	}
	if priority != 0 {
		if raw, err = stampPriority(raw, priority); err != nil {
			fmt.Fprintln(os.Stderr, "coordbench:", err)
			return 2
		}
	}
	base = strings.TrimRight(base, "/")
	client := newRetryClient()

	st, err := submitSweep(client, base, raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordbench:", err)
		return 1
	}
	fmt.Fprintf(out, "sweep %s: %d cells (key %s)\n", st.ID, st.Cells, st.Key[:12])

	deadline := time.Now().Add(timeout)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "coordbench: sweep %s still %s after %v\n", st.ID, st.State, timeout)
			return 1
		}
		time.Sleep(250 * time.Millisecond)
		st, err = pollSweep(client, base, st.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordbench:", err)
			return 1
		}
	}

	fmt.Fprint(out, renderSweep(st))
	if client.retries > 0 {
		fmt.Fprintf(out, "overload retries: %d (waited %v)\n", client.retries, client.waited.Round(time.Millisecond))
	}
	if st.State != service.StateDone {
		fmt.Fprintf(os.Stderr, "coordbench: sweep %s ended %s (%d failed, %d cancelled)\n",
			st.ID, st.State, st.Failed, st.Cancelled)
		return 1
	}
	return 0
}

// loadSweepSpec reads the sweep spec from the flag value: a leading '@'
// names a file, anything else is inline JSON.
func loadSweepSpec(arg string) ([]byte, error) {
	if name, ok := strings.CutPrefix(arg, "@"); ok {
		return os.ReadFile(name)
	}
	return []byte(arg), nil
}

// stampPriority sets -priority on the sweep's base spec, which every
// expanded cell inherits. The spec round-trips through the typed
// SweepSpec so a malformed sweep fails here, client-side, rather than
// as a server 400.
func stampPriority(raw []byte, priority int) ([]byte, error) {
	var spec service.SweepSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("parsing sweep spec to stamp priority: %w", err)
	}
	spec.Base.Priority = priority
	return json.Marshal(spec)
}

// submitSweep posts the sweep, retrying overload. Retrying a submit is
// safe: sweep submission is idempotent up to coalescing — a re-sent
// grid answers from the cache or attaches to in-flight twins.
func submitSweep(client *retryClient, base string, raw []byte) (*service.SweepStatus, error) {
	resp, err := client.do(func() (*http.Response, error) {
		return client.c.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(raw))
	})
	if err != nil {
		return nil, err
	}
	return decodeSweep(resp)
}

func pollSweep(client *retryClient, base, id string) (*service.SweepStatus, error) {
	resp, err := client.do(func() (*http.Response, error) {
		return client.c.Get(base + "/v1/sweeps/" + id)
	})
	if err != nil {
		return nil, err
	}
	return decodeSweep(resp)
}

func decodeSweep(resp *http.Response) (*service.SweepStatus, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("server: %s", ae.Error)
		}
		return nil, fmt.Errorf("server: %s", resp.Status)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("decoding sweep status: %w", err)
	}
	return &st, nil
}

// renderSweep formats the settled sweep as the paper's tradeoff table:
// one row per cell with the axis coordinates, the Wilson 95% intervals
// of L (the liveness estimate TA) and U (the unsafety estimate PA), and
// their point-estimate ratio L/U, the quantity Theorem 5.4 bounds.
func renderSweep(st *service.SweepStatus) string {
	names := paramColumns(st)
	cols := append(append([]string{}, names...),
		"state", "trials", "L=ta (95% CI)", "U=pa (95% CI)", "L/U")
	t := table.New(fmt.Sprintf("sweep %s [%s]", st.ID, st.State), cols...)
	for _, row := range st.Table {
		cells := make([]string, 0, len(cols))
		for _, n := range names {
			cells = append(cells, row.Params[n])
		}
		trials := fmt.Sprintf("%d", row.Completed)
		if row.Stopped {
			trials += "*" // early-stopped at the target CI width
		}
		cells = append(cells, string(row.State), trials,
			renderInterval(row.TA), renderInterval(row.PA), renderRatio(row))
		t.AddRow(cells...)
	}
	s := t.Render()
	for _, row := range st.Table {
		if row.Stopped {
			s += "(* = stopped early at the target CI width)\n"
			break
		}
	}
	return s
}

// paramColumns orders the axis names: the well-known axes first, in
// sweep-expansion order, then any others alphabetically.
func paramColumns(st *service.SweepStatus) []string {
	known := []string{"graph", "rounds", "epsilon", "fault_rate", "trials", "seed"}
	seen := make(map[string]bool)
	for _, row := range st.Table {
		for n := range row.Params {
			seen[n] = true
		}
	}
	var out []string
	for _, n := range known {
		if seen[n] {
			out = append(out, n)
			delete(seen, n)
		}
	}
	rest := make([]string, 0, len(seen))
	for n := range seen {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func renderInterval(iv *stats.Interval) string {
	if iv == nil {
		return "-"
	}
	return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi)
}

func renderRatio(row service.SweepRow) string {
	if row.LOverU == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", row.LOverU)
}
