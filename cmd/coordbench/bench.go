package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"coordattack/internal/cliutil"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	runpkg "coordattack/internal/run"
	"coordattack/internal/sim"
)

// benchReport is the machine-readable output of -bench: the throughput
// baseline checked in as BENCH_N.json. The kind string is versioned so
// later baselines can change shape without ambiguity.
type benchReport struct {
	Kind          string       `json:"kind"`
	Go            string       `json:"go"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	TrialsPerCell int          `json:"trials_per_cell"`
	Results       []benchPoint `json:"results"`
}

type benchPoint struct {
	Protocol     string  `json:"protocol"`
	Graph        string  `json:"graph"`
	Engine       string  `json:"engine"`
	Trials       int     `json:"trials"`
	Seconds      float64 `json:"seconds"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// benchMatrix is the fixed protocol × graph × engine grid every
// baseline measures, so BENCH files stay comparable across commits.
// Protocol A is pair-only, so the protocols here are the ones defined
// on arbitrary graphs: the paper's randomized S (ε = 0.1) and the
// deterministic full-information baseline.
var (
	benchProtocols = []string{"s:0.1", "detfullinfo"}
	benchGraphs    = []string{"pair", "complete:4", "ring:6"}
	benchEngines   = []string{"sim", "concurrent", "mc"}
)

const benchRounds = 10

// runBench measures Monte-Carlo trial throughput over the fixed matrix
// and writes one JSON report. The "sim" engine is the sequential
// round-loop simulator, "concurrent" the goroutine-per-process one, and
// "mc" the full estimator with its trial-level parallelism — so the
// three rows per cell separate simulator cost, concurrency overhead,
// and estimator scaling. Each row uses the zero-alloc fast engine when
// the protocol provides one (every matrix protocol does), falling back
// to the reference engines otherwise — the same dispatch mc.Estimate
// performs internally. When baselinePath names an earlier BENCH_N.json,
// the run additionally gates on it: any cell slower than maxSlowdown ×
// its baseline throughput fails the run.
func runBench(trials int, seed uint64, baselinePath string, maxSlowdown float64, out io.Writer) int {
	if trials <= 0 {
		trials = 5000
	}
	if seed == 0 {
		seed = 1992
	}
	report := benchReport{
		Kind:          "coordbench-bench/v1",
		Go:            runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		TrialsPerCell: trials,
	}
	for _, proto := range benchProtocols {
		p, err := cliutil.ParseProtocol(proto)
		if err != nil {
			fmt.Fprintf(out, "coordbench: %v\n", err)
			return 1
		}
		for _, gspec := range benchGraphs {
			g, err := cliutil.ParseGraph(gspec, seed)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			inputs, err := cliutil.ParseInputs("all", g)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			r, err := cliutil.ParseRun("good", g, benchRounds, inputs, seed)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			for _, eng := range benchEngines {
				var secs float64
				switch eng {
				case "sim", "concurrent":
					stream := rng.NewStream(seed)
					if eng == "sim" {
						secs, err = benchSim(p, g, r, stream, trials)
					} else {
						secs, err = benchConcurrent(p, g, r, stream, trials)
					}
					if err != nil {
						fmt.Fprintf(out, "coordbench: %s %s %s: %v\n", proto, gspec, eng, err)
						return 1
					}
				case "mc":
					start := time.Now()
					if _, err := mc.Estimate(mc.Config{
						Protocol: p,
						Graph:    g,
						Run:      r,
						Trials:   trials,
						Seed:     seed,
					}); err != nil {
						fmt.Fprintf(out, "coordbench: %s %s mc: %v\n", proto, gspec, err)
						return 1
					}
					secs = time.Since(start).Seconds()
				}
				tps := 0.0
				if secs > 0 {
					tps = float64(trials) / secs
				}
				report.Results = append(report.Results, benchPoint{
					Protocol:     proto,
					Graph:        gspec,
					Engine:       eng,
					Trials:       trials,
					Seconds:      secs,
					TrialsPerSec: tps,
				})
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return 1
	}
	if baselinePath != "" {
		if err := checkBaseline(report, baselinePath, maxSlowdown); err != nil {
			fmt.Fprintf(os.Stderr, "coordbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "coordbench: all cells within %gx of %s\n", maxSlowdown, baselinePath)
	}
	return 0
}

// benchSim times the sequential engines: the zero-alloc Engine when the
// protocol has one, the reference loop otherwise.
func benchSim(p protocol.Protocol, g *graph.G, r *runpkg.Run, stream rng.Stream, trials int) (float64, error) {
	eng, err := sim.NewEngine(p, g, r.N())
	if errors.Is(err, sim.ErrNoFastPath) {
		start := time.Now()
		for t := 0; t < trials; t++ {
			if _, err := sim.Outputs(p, g, r, sim.StreamTapes(stream, uint64(t))); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	if err != nil {
		return 0, err
	}
	if err := eng.LoadRun(r); err != nil {
		return 0, err
	}
	start := time.Now()
	for t := 0; t < trials; t++ {
		if _, err := eng.Trial(stream, uint64(t)); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}

// benchConcurrent times the goroutine-per-process engines, preferring
// the persistent-worker ConcurrentEngine.
func benchConcurrent(p protocol.Protocol, g *graph.G, r *runpkg.Run, stream rng.Stream, trials int) (float64, error) {
	eng, err := sim.NewConcurrentEngine(p, g, r.N())
	if errors.Is(err, sim.ErrNoFastPath) {
		start := time.Now()
		for t := 0; t < trials; t++ {
			if _, err := sim.ConcurrentOutputs(p, g, r, sim.StreamTapes(stream, uint64(t))); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	if err := eng.LoadRun(r); err != nil {
		return 0, err
	}
	start := time.Now()
	for t := 0; t < trials; t++ {
		if _, err := eng.Trial(stream, uint64(t)); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}

// checkBaseline compares the fresh report against a checked-in
// BENCH_N.json: every cell present in both must run at no worse than
// maxSlowdown × the baseline time. Absolute throughputs move with the
// host, so this is a smoke gate against order-of-magnitude regressions
// (an accidental fallback to the reference path), not a microbenchmark.
func checkBaseline(report benchReport, path string, maxSlowdown float64) error {
	if maxSlowdown <= 0 {
		return fmt.Errorf("-max-slowdown must be positive, got %g", maxSlowdown)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseTPS := make(map[string]float64, len(base.Results))
	for _, pt := range base.Results {
		baseTPS[pt.Protocol+"|"+pt.Graph+"|"+pt.Engine] = pt.TrialsPerSec
	}
	var regressions []string
	for _, pt := range report.Results {
		want, ok := baseTPS[pt.Protocol+"|"+pt.Graph+"|"+pt.Engine]
		if !ok || want <= 0 || pt.TrialsPerSec <= 0 {
			continue
		}
		if slow := want / pt.TrialsPerSec; slow > maxSlowdown {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s %s: %.0f trials/sec vs baseline %.0f (%.1fx slower, gate %gx)",
				pt.Protocol, pt.Graph, pt.Engine, pt.TrialsPerSec, want, slow, maxSlowdown))
		}
	}
	if len(regressions) > 0 {
		msg := "throughput regressions vs " + path + ":"
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	return nil
}
