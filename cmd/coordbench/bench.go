package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"coordattack/internal/cliutil"
	"coordattack/internal/mc"
	"coordattack/internal/rng"
	"coordattack/internal/sim"
)

// benchReport is the machine-readable output of -bench: the throughput
// baseline checked in as BENCH_N.json. The kind string is versioned so
// later baselines can change shape without ambiguity.
type benchReport struct {
	Kind          string       `json:"kind"`
	Go            string       `json:"go"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	TrialsPerCell int          `json:"trials_per_cell"`
	Results       []benchPoint `json:"results"`
}

type benchPoint struct {
	Protocol     string  `json:"protocol"`
	Graph        string  `json:"graph"`
	Engine       string  `json:"engine"`
	Trials       int     `json:"trials"`
	Seconds      float64 `json:"seconds"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// benchMatrix is the fixed protocol × graph × engine grid every
// baseline measures, so BENCH files stay comparable across commits.
// Protocol A is pair-only, so the protocols here are the ones defined
// on arbitrary graphs: the paper's randomized S (ε = 0.1) and the
// deterministic full-information baseline.
var (
	benchProtocols = []string{"s:0.1", "detfullinfo"}
	benchGraphs    = []string{"pair", "complete:4", "ring:6"}
	benchEngines   = []string{"sim", "concurrent", "mc"}
)

const benchRounds = 10

// runBench measures Monte-Carlo trial throughput over the fixed matrix
// and writes one JSON report. The "sim" engine is the sequential
// round-loop simulator, "concurrent" the goroutine-per-process one, and
// "mc" the full estimator with its trial-level parallelism — so the
// three rows per cell separate simulator cost, concurrency overhead,
// and estimator scaling.
func runBench(trials int, seed uint64, out io.Writer) int {
	if trials <= 0 {
		trials = 5000
	}
	if seed == 0 {
		seed = 1992
	}
	report := benchReport{
		Kind:          "coordbench-bench/v1",
		Go:            runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		TrialsPerCell: trials,
	}
	for _, proto := range benchProtocols {
		p, err := cliutil.ParseProtocol(proto)
		if err != nil {
			fmt.Fprintf(out, "coordbench: %v\n", err)
			return 1
		}
		for _, gspec := range benchGraphs {
			g, err := cliutil.ParseGraph(gspec, seed)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			inputs, err := cliutil.ParseInputs("all", g)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			r, err := cliutil.ParseRun("good", g, benchRounds, inputs, seed)
			if err != nil {
				fmt.Fprintf(out, "coordbench: %v\n", err)
				return 1
			}
			for _, eng := range benchEngines {
				var secs float64
				switch eng {
				case "sim", "concurrent":
					stream := rng.NewStream(seed)
					start := time.Now()
					for t := 0; t < trials; t++ {
						tapes := sim.StreamTapes(stream, uint64(t))
						if eng == "sim" {
							_, err = sim.Outputs(p, g, r, tapes)
						} else {
							_, err = sim.ConcurrentOutputs(p, g, r, tapes)
						}
						if err != nil {
							fmt.Fprintf(out, "coordbench: %s %s %s: %v\n", proto, gspec, eng, err)
							return 1
						}
					}
					secs = time.Since(start).Seconds()
				case "mc":
					start := time.Now()
					if _, err := mc.Estimate(mc.Config{
						Protocol: p,
						Graph:    g,
						Run:      r,
						Trials:   trials,
						Seed:     seed,
					}); err != nil {
						fmt.Fprintf(out, "coordbench: %s %s mc: %v\n", proto, gspec, err)
						return 1
					}
					secs = time.Since(start).Seconds()
				}
				tps := 0.0
				if secs > 0 {
					tps = float64(trials) / secs
				}
				report.Results = append(report.Results, benchPoint{
					Protocol:     proto,
					Graph:        gspec,
					Engine:       eng,
					Trials:       trials,
					Seconds:      secs,
					TrialsPerSec: tps,
				})
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return 1
	}
	return 0
}
