package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchBaselineGate runs a tiny bench twice: once gated against a
// baseline it trivially beats (pass) and once against an impossibly
// fast fabricated baseline (fail), pinning both sides of the
// perf-regression smoke check.
func TestBenchBaselineGate(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if code := run([]string{"-bench", "-trials", "60"}, &b); code != 0 {
		t.Fatalf("bench exit %d:\n%s", code, b.String())
	}
	var report benchReport
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("bench output not JSON: %v", err)
	}
	if len(report.Results) != len(benchProtocols)*len(benchGraphs)*len(benchEngines) {
		t.Fatalf("report has %d cells, want the full matrix", len(report.Results))
	}

	easy := report // a machine is never 1000000x slower than itself
	easyPath := filepath.Join(dir, "easy.json")
	writeBaseline(t, easyPath, easy, 1e-6)
	var out strings.Builder
	if code := run([]string{"-bench", "-trials", "60", "-baseline", easyPath}, &out); code != 0 {
		t.Errorf("gate failed against an easy baseline:\n%s", out.String())
	}

	hard := report
	hardPath := filepath.Join(dir, "hard.json")
	writeBaseline(t, hardPath, hard, 1e6)
	if code := run([]string{"-bench", "-trials", "60", "-baseline", hardPath}, &out); code == 0 {
		t.Error("gate passed against an impossibly fast baseline")
	}
}

// writeBaseline rescales a report's throughputs and writes it as a
// baseline file.
func writeBaseline(t *testing.T, path string, report benchReport, scale float64) {
	t.Helper()
	pts := make([]benchPoint, len(report.Results))
	copy(pts, report.Results)
	for i := range pts {
		pts[i].TrialsPerSec *= scale
	}
	report.Results = pts
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineFlagNeedsBench(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-baseline", "BENCH_1.json"}, &b); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
