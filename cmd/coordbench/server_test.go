package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coordattack/internal/service"
)

// testRetryClient returns a retryClient with deterministic jitter (×1.0)
// and recorded, skipped sleeps.
func testRetryClient() (*retryClient, *[]time.Duration) {
	rc := newRetryClient()
	slept := &[]time.Duration{}
	rc.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	rc.jitter = func() float64 { return 0.5 }
	return rc, slept
}

func TestRetryClientRetriesOverloadThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "queue full"}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	rc, slept := testRetryClient()
	resp, err := rc.do(func() (*http.Response, error) { return rc.c.Get(srv.URL) })
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("final status %d, want 200", resp.StatusCode)
	}
	if rc.retries != 2 {
		t.Errorf("retries = %d, want 2", rc.retries)
	}
	// Retry-After: 1 overrides both exponential steps (250ms, 500ms).
	want := []time.Duration{time.Second, time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", *slept, want)
	}
	if rc.waited != 2*time.Second {
		t.Errorf("waited = %v, want 2s", rc.waited)
	}
}

func TestRetryClientGivesUpAndSurfacesServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error": "draining"}`)
	}))
	defer srv.Close()

	rc, _ := testRetryClient()
	rc.maxAttempts = 3
	resp, err := rc.do(func() (*http.Response, error) { return rc.c.Get(srv.URL) })
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final status %d, want the 503 back", resp.StatusCode)
	}
	if rc.retries != 2 {
		t.Errorf("retries = %d, want maxAttempts-1 = 2", rc.retries)
	}
	// The final response comes back unconsumed: decodeSweep still reads
	// the server's structured error out of it.
	if _, err := decodeSweep(resp); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("decode error = %v, want the server's draining message", err)
	}
}

func TestRetryDelayBackoffAndCaps(t *testing.T) {
	rc, _ := testRetryClient()
	cases := []struct {
		attempt    int
		retryAfter string
		want       time.Duration
	}{
		{1, "", 250 * time.Millisecond},
		{2, "", 500 * time.Millisecond},
		{3, "", time.Second},
		{6, "", 4 * time.Second},    // exponential cap
		{1, "2", 2 * time.Second},   // Retry-After raises the wait
		{6, "1", 4 * time.Second},   // ...but never lowers it
		{1, "30", 15 * time.Second}, // honored only up to maxHonor
		{1, "nonsense", 250 * time.Millisecond},
		{1, "-3", 250 * time.Millisecond},
	}
	for _, c := range cases {
		if got := rc.delay(c.attempt, c.retryAfter); got != c.want {
			t.Errorf("delay(attempt=%d, retryAfter=%q) = %v, want %v", c.attempt, c.retryAfter, got, c.want)
		}
	}
}

func TestRunServerSurfacesRetriesInSummary(t *testing.T) {
	// A server that sheds the first submit and then settles immediately:
	// the bench must transparently retry and report the backpressure.
	var posts atomic.Int64
	settled := service.SweepStatus{ID: "sw-test", Key: strings.Repeat("ab", 32), State: service.StateDone, Cells: 1}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && posts.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "queue full"}`)
			return
		}
		json.NewEncoder(w).Encode(settled)
	}))
	defer srv.Close()

	var out strings.Builder
	code := runServer(srv.URL, `{"base": {"protocol": "s:0.5"}}`, 0, time.Minute, &out)
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	if got := posts.Load(); got != 2 {
		t.Errorf("submit posts = %d, want 2 (one shed, one retried)", got)
	}
	if !strings.Contains(out.String(), "overload retries: 1") {
		t.Errorf("summary missing retry line:\n%s", out.String())
	}
}

func TestRunServerStampsPriorityOnSubmit(t *testing.T) {
	var gotBase service.JobSpec
	settled := service.SweepStatus{ID: "sw-test", Key: strings.Repeat("ab", 32), State: service.StateDone, Cells: 1}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			var spec service.SweepSpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				t.Errorf("decoding posted sweep: %v", err)
			}
			gotBase = spec.Base
		}
		json.NewEncoder(w).Encode(settled)
	}))
	defer srv.Close()

	var out strings.Builder
	code := runServer(srv.URL, `{"base": {"protocol": "s:0.5"}}`, -7, time.Minute, &out)
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	if gotBase.Priority != -7 {
		t.Errorf("posted base priority = %d, want -7", gotBase.Priority)
	}
	if gotBase.Protocol != "s:0.5" {
		t.Errorf("stamping priority lost the rest of the spec: %+v", gotBase)
	}
	if _, err := stampPriority([]byte(`{"base": 3}`), 1); err == nil {
		t.Error("stampPriority accepted a malformed sweep spec")
	}
}
