// Command coordbench regenerates every experiment in the reproduction —
// one table or figure per quantitative claim in the paper (see DESIGN.md
// §3 for the index). With -markdown it emits the body of EXPERIMENTS.md.
//
// Usage:
//
//	coordbench                    # run all experiments, ASCII report
//	coordbench -experiment T3     # one experiment
//	coordbench -quick             # reduced sweeps (CI-sized)
//	coordbench -trials 50000      # raise the Monte-Carlo budget
//	coordbench -markdown          # markdown output (EXPERIMENTS.md body)
//
// With -server it is a sweep client instead: it submits a parameter
// sweep to a running coordd, waits for every cell, and prints the
// rolled-up L/U tradeoff table.
//
//	coordbench -server http://127.0.0.1:8344 \
//	    -sweep '{"base": {"protocol": "s:0.1", "trials": 20000}, "axes": {"rounds": [10, 100]}}'
//	coordbench -server http://127.0.0.1:8344 -sweep @sweep.json
//
// Exit status is nonzero if any experiment's claim check fails (or, in
// server mode, if any sweep cell failed or was cancelled).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"coordattack/internal/experiments"
	"coordattack/internal/table"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("coordbench", flag.ContinueOnError)
	var (
		expID    = fs.String("experiment", "", "run only this experiment id (e.g. T3, F1)")
		trials   = fs.Int("trials", 0, "Monte-Carlo trials per point (0 = default)")
		seed     = fs.Uint64("seed", 0, "root seed (0 = default 1992)")
		quick    = fs.Bool("quick", false, "reduced sweeps")
		markdown = fs.Bool("markdown", false, "emit markdown instead of ASCII")
		jsonOut  = fs.Bool("json", false, "emit machine-readable JSON (one object per experiment)")
		outPath  = fs.String("out", "", "also write the report to this file")
		server   = fs.String("server", "", "client mode: submit a sweep to the coordd at this base URL")
		sweep    = fs.String("sweep", "", "with -server: sweep spec JSON, or @file")
		wait     = fs.Duration("wait", 10*time.Minute, "with -server: how long to wait for the sweep to settle")
		priority = fs.Int("priority", 0, "with -server: scheduling priority stamped on the sweep's base spec (-100..100, higher runs first)")
		bench    = fs.Bool("bench", false, "throughput-baseline mode: measure trials/sec over the fixed protocol × graph × engine matrix, emit JSON")
		baseline = fs.String("baseline", "", "with -bench: compare against this BENCH_N.json and fail on regressions")
		maxSlow  = fs.Float64("max-slowdown", 2, "with -bench -baseline: fail any cell slower than this factor of its baseline throughput")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bench {
		sink := out
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer f.Close()
			sink = f
		}
		return runBench(*trials, *seed, *baseline, *maxSlow, sink)
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "coordbench: -baseline needs -bench")
		return 2
	}
	if *server != "" {
		return runServer(*server, *sweep, *priority, *wait, out)
	}
	if *priority != 0 {
		fmt.Fprintln(os.Stderr, "coordbench: -priority needs -server")
		return 2
	}
	if *sweep != "" {
		fmt.Fprintln(os.Stderr, "coordbench: -sweep needs -server")
		return 2
	}
	opt := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick}

	var fileSink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		fileSink = f
	}
	emit := func(text string) {
		fmt.Fprint(out, text)
		if fileSink != nil {
			fmt.Fprint(fileSink, text)
		}
	}

	var list []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	failures := 0
	type verdictRow struct {
		id, claim string
		ok        bool
	}
	var verdicts []verdictRow
	for _, e := range list {
		res, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordbench: %s: %v\n", e.ID, err)
			return 1
		}
		switch {
		case *jsonOut:
			data, err := res.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "coordbench: %s: %v\n", e.ID, err)
				return 1
			}
			emit(string(data))
			emit("\n")
		case *markdown:
			emit(res.Markdown())
		default:
			emit(res.Render())
			emit("\n")
		}
		verdicts = append(verdicts, verdictRow{id: res.ID, claim: res.Claim, ok: res.OK})
		if !res.OK {
			failures++
		}
	}
	if len(verdicts) > 1 && !*markdown && !*jsonOut {
		summary := table.New("summary", "experiment", "verdict", "claim")
		for _, v := range verdicts {
			verdict := "PASS"
			if !v.ok {
				verdict = "FAIL"
			}
			summary.AddRow(v.id, verdict, v.claim)
		}
		emit(summary.Render())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "coordbench: %d experiment(s) failed their claim checks\n", failures)
		return 1
	}
	return 0
}
