package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-experiment", "T2", "-quick", "-trials", "2000"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"### T2", "PASS", "liveness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-experiment", "T7", "-quick", "-markdown"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(b.String(), "| graph |") {
		t.Errorf("markdown table missing:\n%s", b.String())
	}
}

func TestRunOutFile(t *testing.T) {
	path := t.TempDir() + "/report.md"
	var b strings.Builder
	code := run([]string{"-experiment", "T13", "-quick", "-markdown", "-out", path}, &b)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != b.String() {
		t.Error("file contents differ from stream output")
	}
	if !strings.Contains(string(data), "### T13") {
		t.Error("report file missing experiment")
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-experiment", "T13", "-quick", "-json"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var payload struct {
		ID     string `json:"id"`
		OK     bool   `json:"ok"`
		Tables []struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(b.String()), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if payload.ID != "T13" || !payload.OK || len(payload.Tables) == 0 {
		t.Errorf("payload wrong: %+v", payload)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-experiment", "T99"}, &b); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-nonsense"}, &b); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}
