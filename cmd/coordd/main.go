// Command coordd is the experiment-serving daemon: it accepts JSON job
// specs over HTTP, schedules them on a bounded worker pool, memoizes
// completed results by canonical spec key, and reports live progress
// and Prometheus metrics. See internal/service for the API.
//
// Usage:
//
//	coordd -addr 127.0.0.1:8344 -workers 4
//	curl -s localhost:8344/v1/jobs -d '{"protocol": "s:0.1", "trials": 50000}'
//	curl -s localhost:8344/v1/jobs/j000001
//	curl -s localhost:8344/metrics
//
// On SIGINT/SIGTERM the daemon drains: it stops accepting jobs, lets
// queued and running work finish (up to -drain-timeout, after which
// in-flight jobs are cancelled and settle with partial results), and
// exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/hints"
	"coordattack/internal/queue"
	"coordattack/internal/service"
	"coordattack/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, nil))
}

// run starts the daemon. stop overrides the OS signal channel so tests
// can trigger a drain; nil means SIGINT/SIGTERM.
func run(args []string, out io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("coordd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8344", "listen address")
		workers      = fs.Int("workers", 2, "concurrent jobs")
		trialWorkers = fs.Int("trial-workers", 0, "Monte-Carlo parallelism per job (0 = GOMAXPROCS/workers, min 1)")
		queueDepth   = fs.Int("queue", 64, "submission queue depth (full queue answers 429)")
		cacheSize    = fs.Int("cache", 1024, "result cache entries")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "per-job deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace period before in-flight jobs are cancelled")
		storeDir     = fs.String("store-dir", "", "on-disk result store directory; empty = memory-only (results die with the process)")
		queueDir     = fs.String("queue-dir", "", "on-disk pending-queue journal directory; empty = accepted-but-unstarted jobs die with the process")
		fairShare    = fs.Bool("fair-share", true, "fair-share scheduling across submitters and sweeps (false = strict global FIFO)")
		interWeight  = fs.Int("interactive-weight", 1, "interactive pops per sweep pop in the fair scheduler")
		storeMax     = fs.Int64("store-max-bytes", 1<<30, "result store size budget in bytes (0 = unlimited)")
		storeProbe   = fs.Duration("store-probe", 10*time.Second, "degraded-store recovery probe interval (0 = never probe; rescan still recovers)")
		sweepKeep    = fs.Int("sweep-retention", 256, "settled sweeps kept queryable before eviction")
		jobKeep      = fs.Int("job-retention", 4096, "settled jobs kept queryable before eviction")
		wdInterval   = fs.Duration("watchdog-interval", 5*time.Second, "stuck-job watchdog scan interval (0 = watchdog off)")
		wdGrace      = fs.Duration("watchdog-grace", 30*time.Second, "time past deadline with no progress before a job is declared stuck")
		peers        = fs.String("peers", "", "comma-separated peer base URLs forming a static cluster; empty = standalone")
		advertise    = fs.String("advertise", "", "this node's address as peers reach it (default: the listen address)")
		peerTimeout  = fs.Duration("peer-timeout", 500*time.Millisecond, "per-request timeout for peer calls")
		stealEvery   = fs.Duration("steal-interval", time.Second, "idle-node work-stealing poll interval (0 = stealing off)")
		replicas     = fs.Int("replicas", 2, "replication factor: ring members holding each result (owner + successors)")
		repairEvery  = fs.Duration("repair-interval", 5*time.Second, "anti-entropy replica repair interval (0 = repair off; needs -store-dir)")
		repairBudget = fs.Duration("repair-timeout", 0, "per-pass budget for an anti-entropy repair pass (0 = derived from -repair-interval)")
		probeEvery   = fs.Duration("probe-interval", time.Second, "peer failure-detector heartbeat interval (0 = detector off)")
		probeMisses  = fs.Int("probe-misses", 3, "consecutive missed heartbeats before a peer is declared dead")
		hintMax      = fs.Int64("hint-max-bytes", 64<<20, "hinted-handoff log size budget in bytes; oldest hints shed past it (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *queueDepth < 1 || *cacheSize < 1 || *jobTimeout <= 0 || *drainTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "coordd: workers, queue, cache, job-timeout and drain-timeout must be positive")
		return 2
	}
	if *trialWorkers < 0 {
		fmt.Fprintln(os.Stderr, "coordd: trial-workers must be >= 0 (0 = auto)")
		return 2
	}
	if *storeMax < 0 || *sweepKeep < 1 || *storeProbe < 0 {
		fmt.Fprintln(os.Stderr, "coordd: store-max-bytes and store-probe must be >= 0 and sweep-retention >= 1")
		return 2
	}
	if *jobKeep < 1 || *wdInterval < 0 || *wdGrace <= 0 {
		fmt.Fprintln(os.Stderr, "coordd: job-retention must be >= 1, watchdog-interval >= 0 and watchdog-grace > 0")
		return 2
	}
	if *interWeight < 1 {
		fmt.Fprintln(os.Stderr, "coordd: interactive-weight must be >= 1")
		return 2
	}
	if *peerTimeout <= 0 || *stealEvery < 0 {
		fmt.Fprintln(os.Stderr, "coordd: peer-timeout must be > 0 and steal-interval >= 0")
		return 2
	}
	if *replicas < 1 || *repairEvery < 0 || *repairBudget < 0 {
		fmt.Fprintln(os.Stderr, "coordd: replicas must be >= 1, repair-interval and repair-timeout >= 0")
		return 2
	}
	if *probeEvery < 0 || *probeMisses < 1 || *hintMax < 0 {
		fmt.Fprintln(os.Stderr, "coordd: probe-interval and hint-max-bytes must be >= 0 and probe-misses >= 1")
		return 2
	}
	if *peers == "" && *advertise != "" {
		fmt.Fprintln(os.Stderr, "coordd: -advertise requires -peers")
		return 2
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			MaxBytes:      *storeMax,
			Logf:          log.Printf,
			ProbeInterval: *storeProbe,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer st.Close()
	}

	var jl *queue.Journal
	if *queueDir != "" {
		var err error
		jl, err = queue.OpenJournal(*queueDir, queue.JournalOptions{Logf: log.Printf})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer jl.Close()
	}

	// Listen before building the cluster: -advertise defaults to the
	// address actually bound, which only exists once the listener does
	// (tests and scripts bind :0 and scrape the chosen port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(out, "coordd: listening on http://%s\n", ln.Addr())

	var cl *cluster.Cluster
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		cl, err = cluster.New(cluster.Options{
			Self:    self,
			Peers:   peerList,
			Factor:  *replicas,
			Timeout: *peerTimeout,
			Logf:    log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if cl.Factor() == *replicas {
			fmt.Fprintf(out, "coordd: cluster self %s, peers %v, replicas %d\n", cl.Self(), cl.PeerAddrs(), cl.Factor())
		} else {
			fmt.Fprintf(out, "coordd: cluster self %s, peers %v, replicas %d (requested %d, clamped to ring size)\n",
				cl.Self(), cl.PeerAddrs(), cl.Factor(), *replicas)
		}
		if members := len(cl.PeerAddrs()) + 1; *replicas >= members {
			log.Printf("coordd: warning: -replicas %d >= %d ring members; every node replicates every "+
				"result, so each write fans out to the whole cluster and losing any node loses nothing "+
				"but costs full-cluster pushes", *replicas, members)
		}
		// Sanity-check the ring configuration. Both misconfigurations are
		// survivable (the ring still hashes, breakers contain the damage)
		// but route traffic to nobody, so say so loudly at boot instead of
		// letting the operator discover it from cold peer counters.
		selfNorm := cluster.NormalizeAddr(self)
		inPeers := false
		for _, p := range peerList {
			if cluster.NormalizeAddr(p) == selfNorm {
				inPeers = true
				break
			}
		}
		if !inPeers {
			log.Printf("coordd: warning: advertise address %s is not in -peers; "+
				"if other nodes use this -peers list their rings will not include this node", selfNorm)
		}
		listenNorm := cluster.NormalizeAddr(ln.Addr().String())
		for _, p := range peerList {
			if n := cluster.NormalizeAddr(p); n == listenNorm && n != selfNorm {
				log.Printf("coordd: warning: peer %s is this node's own listen address but -advertise is %s; "+
					"the node would dial itself for that ring member", n, selfNorm)
			}
		}
	}

	// The hinted-handoff log rides in the queue journal's directory: both
	// are small WALs recording work the node still owes someone, and a
	// node that wants crash-safe queues wants crash-safe hints too. No
	// -queue-dir means hints live in memory and die with the process —
	// the anti-entropy repair loop is then the only healer.
	var hl *hints.Log
	if cl != nil {
		hintDir := ""
		if *queueDir != "" {
			hintDir = filepath.Join(*queueDir, "hints")
		}
		hl, err = hints.Open(hintDir, hints.Options{
			Logf:     log.Printf,
			MaxBytes: *hintMax,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer hl.Close()
		if hintDir != "" {
			fmt.Fprintf(out, "coordd: hint log %s (%d hints replayed)\n", hintDir, hl.Stats().Replayed)
		}
	}

	watchdogInterval := *wdInterval
	if watchdogInterval == 0 {
		watchdogInterval = -1 // flag 0 = off; Config 0 = default
	}
	stealInterval := *stealEvery
	if stealInterval == 0 {
		stealInterval = -1 // flag 0 = off; Config 0 = default
	}
	repairInterval := *repairEvery
	if repairInterval == 0 {
		repairInterval = -1 // flag 0 = off; Config 0 = default
	}
	probeInterval := *probeEvery
	if probeInterval == 0 {
		probeInterval = -1 // flag 0 = off; Config 0 = default
	}
	srv := service.New(service.Config{
		Workers:           *workers,
		TrialWorkers:      *trialWorkers,
		QueueDepth:        *queueDepth,
		StrictFIFO:        !*fairShare,
		InteractiveWeight: *interWeight,
		CacheSize:         *cacheSize,
		JobTimeout:        *jobTimeout,
		Store:             st,
		Journal:           jl,
		SweepRetention:    *sweepKeep,
		JobRetention:      *jobKeep,
		WatchdogInterval:  watchdogInterval,
		WatchdogGrace:     *wdGrace,
		Cluster:           cl,
		StealInterval:     stealInterval,
		RepairInterval:    repairInterval,
		RepairTimeout:     *repairBudget,
		Hints:             hl,
		ProbeInterval:     probeInterval,
		ProbeMisses:       *probeMisses,
	})
	if st != nil {
		fmt.Fprintf(out, "coordd: result store %s (%d entries, budget %d bytes)\n", *storeDir, st.Len(), *storeMax)
	}
	if jl != nil {
		fmt.Fprintf(out, "coordd: queue journal %s (%d pending jobs replayed)\n", *queueDir, jl.Stats().Replayed)
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		stop = ch
	}
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case sig := <-stop:
		fmt.Fprintf(out, "coordd: received %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain jobs before closing HTTP: watch streams end when their jobs
	// settle, which lets Shutdown finish inside the same grace period.
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(out, "coordd: drain forced after %v: in-flight jobs cancelled\n", *drainTimeout)
	}
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	fmt.Fprintln(out, "coordd: bye")
	return 0
}
