// Command coordd is the experiment-serving daemon: it accepts JSON job
// specs over HTTP, schedules them on a bounded worker pool, memoizes
// completed results by canonical spec key, and reports live progress
// and Prometheus metrics. See internal/service for the API.
//
// Usage:
//
//	coordd -addr 127.0.0.1:8344 -workers 4
//	curl -s localhost:8344/v1/jobs -d '{"protocol": "s:0.1", "trials": 50000}'
//	curl -s localhost:8344/v1/jobs/j000001
//	curl -s localhost:8344/metrics
//
// On SIGINT/SIGTERM the daemon drains: it stops accepting jobs, lets
// queued and running work finish (up to -drain-timeout, after which
// in-flight jobs are cancelled and settle with partial results), and
// exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coordattack/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, nil))
}

// run starts the daemon. stop overrides the OS signal channel so tests
// can trigger a drain; nil means SIGINT/SIGTERM.
func run(args []string, out io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("coordd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8344", "listen address")
		workers      = fs.Int("workers", 2, "concurrent jobs")
		trialWorkers = fs.Int("trial-workers", 0, "Monte-Carlo parallelism per job (0 = GOMAXPROCS/workers, min 1)")
		queueDepth   = fs.Int("queue", 64, "submission queue depth (full queue answers 429)")
		cacheSize    = fs.Int("cache", 1024, "result cache entries")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "per-job deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace period before in-flight jobs are cancelled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *queueDepth < 1 || *cacheSize < 1 || *jobTimeout <= 0 || *drainTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "coordd: workers, queue, cache, job-timeout and drain-timeout must be positive")
		return 2
	}
	if *trialWorkers < 0 {
		fmt.Fprintln(os.Stderr, "coordd: trial-workers must be >= 0 (0 = auto)")
		return 2
	}

	srv := service.New(service.Config{
		Workers:      *workers,
		TrialWorkers: *trialWorkers,
		QueueDepth:   *queueDepth,
		CacheSize:    *cacheSize,
		JobTimeout:   *jobTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The listen line is a contract: tests and scripts bind to :0 and
	// scrape the chosen port from it.
	fmt.Fprintf(out, "coordd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		stop = ch
	}
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case sig := <-stop:
		fmt.Fprintf(out, "coordd: received %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain jobs before closing HTTP: watch streams end when their jobs
	// settle, which lets Shutdown finish inside the same grace period.
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(out, "coordd: drain forced after %v: in-flight jobs cancelled\n", *drainTimeout)
	}
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	fmt.Fprintln(out, "coordd: bye")
	return 0
}
