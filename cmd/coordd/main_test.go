package main

import (
	"bufio"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogusflag"},
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-job-timeout", "0s"},
		{"-store-max-bytes", "-1"},
		{"-sweep-retention", "0"},
		{"-store-probe", "-1s"},
		{"-job-retention", "0"},
		{"-watchdog-interval", "-1s"},
		{"-watchdog-grace", "0s"},
	}
	for _, args := range cases {
		if code := run(args, io.Discard, nil); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestDaemonBadAddr(t *testing.T) {
	if code := run([]string{"-addr", "256.0.0.1:-1"}, io.Discard, nil); code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}

func TestDaemonBadStoreDir(t *testing.T) {
	// A -store-dir that cannot be created (path under a regular file)
	// must fail startup rather than silently running memory-only.
	blocker := t.TempDir() + "/file"
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-store-dir", blocker + "/store"}, io.Discard, nil); code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}

// bootDaemon starts the daemon on an ephemeral port with the given extra
// flags and returns its base URL, the signal channel that triggers a
// drain, and the channel carrying the exit code.
func bootDaemon(t *testing.T, extra ...string) (string, chan os.Signal, chan int) {
	t.Helper()
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, extra...)
	go func() { exit <- run(args, pw, stop) }()

	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, pr) // keep later writes from blocking
	const prefix = "coordd: listening on http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected banner %q", line)
	}
	return "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix)), stop, exit
}

// shutdownDaemon SIGTERMs a booted daemon and asserts a clean exit.
func shutdownDaemon(t *testing.T, stop chan os.Signal, exit chan int) {
	t.Helper()
	stop <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestDaemonRestartPersistence is the end-to-end durability proof: a
// daemon computes a result into -store-dir, is SIGTERMed, and a fresh
// daemon over the same directory answers the identical spec as an
// immediate cache hit with coordd_engine_runs_total still zero.
func TestDaemonRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	const spec = `{"protocol": "a", "rounds": 6, "trials": 2000, "seed": 11}`

	base, stop, exit := bootDaemon(t, "-store-dir", dir)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	shutdownDaemon(t, stop, exit)

	base, stop, exit = bootDaemon(t, "-store-dir", dir)
	defer shutdownDaemon(t, stop, exit)
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var hit struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hit.State != "done" || !hit.Cached {
		t.Fatalf("restart resubmission code %d state %q cached %v, want cache hit", resp.StatusCode, hit.State, hit.Cached)
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(metrics), "coordd_engine_runs_total 0") {
		t.Errorf("restarted daemon ran the engine; /metrics:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "coordd_store_hits_total 1") {
		t.Errorf("/metrics missing store hit:\n%s", metrics)
	}
}

// TestDaemonAdminStore exercises the operator surface over real HTTP: a
// daemon with a store reports its health under /v1/admin/store, a
// rescan returns a clean report, and a store-less daemon 404s both.
func TestDaemonAdminStore(t *testing.T) {
	dir := t.TempDir()
	base, stop, exit := bootDaemon(t, "-store-dir", dir)
	defer shutdownDaemon(t, stop, exit)

	r, err := http.Get(base + "/v1/admin/store")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Degraded   bool              `json:"degraded"`
		Quarantine []json.RawMessage `json:"quarantine"`
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || health.Degraded {
		t.Errorf("admin/store code %d degraded %v, want healthy 200", r.StatusCode, health.Degraded)
	}
	if health.Quarantine == nil {
		t.Error("quarantine field absent, want [] even when empty")
	}

	r, err = http.Post(base+"/v1/admin/store/rescan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Degraded  bool `json:"degraded"`
		Recovered bool `json:"recovered"`
	}
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || rep.Degraded || rep.Recovered {
		t.Errorf("rescan code %d report %+v, want clean 200", r.StatusCode, rep)
	}

	// Without -store-dir there is nothing to administer: 404.
	base2, stop2, exit2 := bootDaemon(t)
	defer shutdownDaemon(t, stop2, exit2)
	r, err = http.Get(base2 + "/v1/admin/store")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("store-less admin/store code %d, want 404", r.StatusCode)
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port, runs the whole
// request lifecycle over real HTTP — submit, poll to completion,
// resubmit for a cache hit, healthz, metrics — and then drains it with
// a SIGTERM, asserting a clean exit.
func TestDaemonSmoke(t *testing.T) {
	pr, pw := io.Pipe()
	stop := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() { exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, pw, stop) }()

	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, pr) // keep later writes from blocking
	const prefix = "coordd: listening on http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected banner %q", line)
	}
	base := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"protocol": "a", "rounds": 6, "trials": 2000, "seed": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST code %d", resp.StatusCode)
	}

	deadline := time.Now().Add(15 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	// Identical resubmission: served from cache, immediately done.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"protocol": "a", "rounds": 6, "trials": 2000, "seed": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var hit struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hit.State != "done" || !hit.Cached {
		t.Fatalf("resubmission code %d state %q cached %v", resp.StatusCode, hit.State, hit.Cached)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: code %d", path, r.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "coordd_cache_hits_total 1") {
			t.Errorf("/metrics missing cache hit:\n%s", body)
		}
	}

	stop <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func TestDaemonBadClusterFlags(t *testing.T) {
	cases := [][]string{
		{"-peer-timeout", "0s"},
		{"-steal-interval", "-1s"},
		{"-advertise", "http://127.0.0.1:1"}, // -advertise without -peers
		{"-peers", "127.0.0.1:1"},            // peer set collapses to self-only
		{"-replicas", "0"},
		{"-repair-interval", "-1s"},
		{"-repair-timeout", "-1s"},
		{"-probe-interval", "-1s"},
		{"-probe-misses", "0"},
		{"-hint-max-bytes", "-1"},
	}
	for _, args := range cases {
		args = append([]string{"-addr", "127.0.0.1:1"}, args...)
		if code := run(args, io.Discard, nil); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

// A survivable-but-wrong ring configuration — the node's advertise
// address missing from its own -peers list — must be called out at
// boot, not discovered later from cold peer counters.
func TestDaemonClusterBootWarning(t *testing.T) {
	var buf strings.Builder
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer := l.Addr().String()
	l.Close()
	// bootDaemon binds :0, so the bound address can never appear in the
	// -peers list: rings built from this list exclude this node.
	_, stop, exit := bootDaemon(t, "-peers", peer)
	shutdownDaemon(t, stop, exit)
	if !strings.Contains(buf.String(), "is not in -peers") {
		t.Fatalf("boot log missing the advertise-not-in-peers warning:\n%s", buf.String())
	}
}

// A replication factor at or above the member count means every node
// holds every result — survivable, but almost never what the operator
// meant, so boot must say so.
func TestDaemonClusterDegenerateReplicasWarning(t *testing.T) {
	var buf strings.Builder
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer := l.Addr().String()
	l.Close()
	_, stop, exit := bootDaemon(t, "-peers", peer, "-replicas", "5")
	shutdownDaemon(t, stop, exit)
	if !strings.Contains(buf.String(), "ring members") {
		t.Fatalf("boot log missing the degenerate-replicas warning:\n%s", buf.String())
	}
}

// TestDaemonCluster boots two daemons joined as a static cluster and
// proves the headline property over the real wire: a result computed on
// node A answers the identical spec on node B as a cache hit — B's
// engine never runs.
func TestDaemonCluster(t *testing.T) {
	// Reserve two ports so each daemon can name the other at boot.
	ports := make([]string, 2)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().String()
		l.Close()
	}
	peerFlag := ports[0] + "," + ports[1]

	type node struct {
		base string
		stop chan os.Signal
		exit chan int
	}
	var nodes []node
	for _, addr := range ports {
		base, stop, exit := bootDaemon(t,
			"-addr", addr, "-peers", peerFlag, "-steal-interval", "100ms")
		nodes = append(nodes, node{base, stop, exit})
	}
	defer func() {
		for _, n := range nodes {
			shutdownDaemon(t, n.stop, n.exit)
		}
	}()

	spec := `{"protocol": "a", "rounds": 6, "trials": 2000, "seed": 7}`
	submit := func(base string) (id, state string, cached bool, code int) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID     string `json:"id"`
			State  string `json:"state"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return st.ID, st.State, st.Cached, resp.StatusCode
	}

	id, state, _, _ := submit(nodes[0].base)
	deadline := time.Now().Add(15 * time.Second)
	for state != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job on A stuck in %q", state)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(nodes[0].base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		state = st.State
	}

	// The same spec on B must settle without running B's engine: either
	// replication already landed it in B's tiers (immediate cached 200)
	// or B's worker fetches it from its owner.
	metric := func(base, name string) string {
		t.Helper()
		r, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, name+" ") {
				return strings.TrimPrefix(line, name+" ")
			}
		}
		return ""
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		id, state, _, _ := submit(nodes[1].base)
		for state != "done" {
			if time.Now().After(deadline) {
				t.Fatalf("job on B stuck in %q", state)
			}
			time.Sleep(10 * time.Millisecond)
			r, err := http.Get(nodes[1].base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State string `json:"state"`
			}
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			state = st.State
		}
		if metric(nodes[1].base, "coordd_engine_runs_total") == "0" {
			break
		}
		t.Fatalf("B ran its engine (%s runs) despite A holding the result",
			metric(nodes[1].base, "coordd_engine_runs_total"))
	}

	// Both admin endpoints answer and healthz reports a healthy cluster.
	for _, n := range nodes {
		r, err := http.Get(n.base + "/v1/admin/cluster")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s/v1/admin/cluster: code %d", n.base, r.StatusCode)
		}
		hz, err := http.Get(n.base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Cluster string `json:"cluster"`
		}
		if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		hz.Body.Close()
		if h.Cluster != "ok" {
			t.Errorf("%s healthz cluster = %q, want ok", n.base, h.Cluster)
		}
	}
}
