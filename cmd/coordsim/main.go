// Command coordsim runs one protocol on one run and reports the outcome,
// optionally with a full execution trace and — for Protocols S and A —
// the exact outcome distribution beside the simulated one.
//
// Usage:
//
//	coordsim -protocol s:0.1 -graph pair -rounds 10 -run good
//	coordsim -protocol a -graph pair -rounds 8 -run cut:5 -trace
//	coordsim -protocol s:0.1 -graph ring:5 -rounds 10 -run tree -inputs 1
//	coordsim -protocol axk:2:all -graph pair -rounds 12 -run loss:0.1
//	coordsim -protocol s:0.1 -graph pair -rounds 10 -run good -fault crash:2@4 -mc 20000
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"coordattack/internal/baseline"
	"coordattack/internal/cliutil"
	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/sim"
	"coordattack/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("coordsim", flag.ContinueOnError)
	var (
		protoSpec = fs.String("protocol", "s:0.1", "protocol spec (s:EPS | s+K:EPS | a | axk:K:MODE | detfullinfo | detthreshold:N/D)")
		graphSpec = fs.String("graph", "pair", "graph spec (pair | complete:M | ring:M | line:M | star:M | grid:RxC | hypercube:D | random:M:P)")
		rounds    = fs.Int("rounds", 10, "number of protocol rounds N")
		runSpec   = fs.String("run", "good", "run spec (good | silent | cut:R | prefix:K | drop:F-T@R | tree | loss:P)")
		inputSpec = fs.String("inputs", "all", "which generals receive the attack signal (all | none | 1,3,...)")
		seed      = fs.Uint64("seed", 1, "random seed for tapes (and loss/random specs)")
		faultSpec = fs.String("fault", "", "inject process faults: kind:proc[@round],... (crash|omit|stutter|garbage|nilsend|panicsend|panicstep|flip) or rand:P")
		traceFlag = fs.Bool("trace", false, "print the full execution trace")
		spacetime = fs.Bool("spacetime", false, "print the run as a spacetime diagram with ML annotations")
		mcTrials  = fs.Int("mc", 0, "also estimate the outcome distribution with this many Monte-Carlo trials")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, err := cliutil.ParseProtocol(*protoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	g, err := cliutil.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	inputs, err := cliutil.ParseInputs(*inputSpec, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := cliutil.ParseRun(*runSpec, g, *rounds, inputs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	plan, err := parseFault(*faultSpec, g, *rounds, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The executed protocol carries the injected faults; p stays the
	// fault-free protocol for the exact analyses.
	executed := fault.Inject(p, plan)

	fmt.Fprintf(out, "protocol: %s\ngraph:    %v\nrun:      %v\n", p.Name(), g, r)
	if !plan.Empty() {
		fmt.Fprintf(out, "faults:   %v\n", plan)
	}

	if *spacetime {
		diagram, err := trace.Spacetime(r, g.NumVertices(), g.NumVertices() >= 2)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprint(out, diagram)
	}
	exec, err := sim.Execute(executed, g, r, sim.SeedTapes(*seed))
	if err != nil {
		// A fault-injected machine dying is an expected outcome, not a
		// reason to abort: report it and carry on to the estimates.
		var me *sim.MachineError
		if !plan.Empty() && errors.As(err, &me) {
			fmt.Fprintf(out, "outcome:  execution failed under injected faults (%v)\n", me)
			exec = nil
		} else {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if exec != nil && *traceFlag {
		for i := 1; i < len(exec.Locals); i++ {
			le := exec.Locals[i]
			fmt.Fprintf(out, "-- process %d (input=%v)\n", le.ID, le.Input)
			for round, rec := range le.Rounds {
				fmt.Fprintf(out, "   round %d:", round+1)
				for _, s := range rec.Sent {
					fate := "lost"
					if s.Delivered {
						fate = "ok"
					}
					fmt.Fprintf(out, " send→%d[%s]", s.To, fate)
				}
				for _, rcv := range rec.Received {
					fmt.Fprintf(out, " recv←%d", rcv.From)
				}
				fmt.Fprintln(out)
			}
		}
	}
	if exec != nil {
		outs := exec.Outputs()
		fmt.Fprintf(out, "outputs:  %v\noutcome:  %v\n", outs[1:], exec.Outcome())
	}

	if *mcTrials > 0 {
		// Trials whose injected faults are fatal (panics, nil sends)
		// count against the budget instead of aborting the estimate.
		res, err := mc.Estimate(mc.Config{
			Protocol: executed, Graph: g, Run: r, Trials: *mcTrials, Seed: *seed,
			MaxFailures: *mcTrials,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "mc(%d):   Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n",
			*mcTrials, res.TA.Mean(), res.PA.Mean(), res.NA.Mean())
		if res.Failed > 0 {
			fmt.Fprintf(out, "          (%d/%d trials failed under injected faults)\n", res.Failed, res.Trials)
		}
	}
	switch proto := p.(type) {
	case *core.S:
		a, err := proto.Analyze(g, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f  ML(R)=%d L(R)=%d bound=%.4f\n",
			a.PTotal, a.PPartial, a.PNone, a.ModMin, a.LevelMin, a.Bound)
		if !plan.Empty() {
			if eq, eqErr := fault.EquivalentRun(r, plan); eqErr == nil {
				af, err := proto.Analyze(g, eq)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				fmt.Fprintf(out, "faulty:   Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f  ML=%d (liveness %.4f → %.4f vs Theorem 5.4 ceiling %.4f; safety Pr[PA] ≤ ε=%g intact)\n",
					af.PTotal, af.PPartial, af.PNone, af.ModMin, a.PTotal, af.PTotal, a.Bound, proto.Epsilon())
			} else {
				fmt.Fprintf(out, "faulty:   plan %v is not omission-equivalent; no exact analysis (use -mc)\n", plan)
			}
		}
	case baseline.A:
		d, err := baseline.AnalyzeA(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n", d.PTotal, d.PPartial, d.PNone)
	case *baseline.RepeatedA:
		d, err := baseline.AnalyzeRepeatedA(proto, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n", d.PTotal, d.PPartial, d.PNone)
	}
	return 0
}

// parseFault turns the -fault flag into a Plan. The empty spec (and
// "none") yields the empty plan. "rand:P" samples a plan with per-process
// fault probability P from the run seed; anything else is the explicit
// kind:proc[@round] list understood by fault.Parse.
func parseFault(spec string, g *graph.G, n int, seed uint64) (*fault.Plan, error) {
	if rest, ok := strings.CutPrefix(spec, "rand:"); ok {
		// NaN slips through a bare range check (it fails both comparisons),
		// so reject non-finite P explicitly: "rand:NaN" must exit 2, not
		// silently run fault-free.
		pf, err := strconv.ParseFloat(rest, 64)
		if err != nil || math.IsNaN(pf) || pf < 0 || pf > 1 {
			return nil, fmt.Errorf("coordsim: bad fault spec %q: want rand:P with P in [0,1]", spec)
		}
		return fault.Sample(seed, 0, g, n, fault.SampleConfig{PFault: pf})
	}
	return fault.Parse(spec, g.NumVertices(), n)
}
