// Command coordsim runs one protocol on one run and reports the outcome,
// optionally with a full execution trace and — for Protocols S and A —
// the exact outcome distribution beside the simulated one.
//
// Usage:
//
//	coordsim -protocol s:0.1 -graph pair -rounds 10 -run good
//	coordsim -protocol a -graph pair -rounds 8 -run cut:5 -trace
//	coordsim -protocol s:0.1 -graph ring:5 -rounds 10 -run tree -inputs 1
//	coordsim -protocol axk:2:all -graph pair -rounds 12 -run loss:0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coordattack/internal/baseline"
	"coordattack/internal/cliutil"
	"coordattack/internal/core"
	"coordattack/internal/mc"
	"coordattack/internal/sim"
	"coordattack/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("coordsim", flag.ContinueOnError)
	var (
		protoSpec = fs.String("protocol", "s:0.1", "protocol spec (s:EPS | s+K:EPS | a | axk:K:MODE | detfullinfo | detthreshold:N/D)")
		graphSpec = fs.String("graph", "pair", "graph spec (pair | complete:M | ring:M | line:M | star:M | grid:RxC | hypercube:D | random:M:P)")
		rounds    = fs.Int("rounds", 10, "number of protocol rounds N")
		runSpec   = fs.String("run", "good", "run spec (good | silent | cut:R | prefix:K | drop:F-T@R | tree | loss:P)")
		inputSpec = fs.String("inputs", "all", "which generals receive the attack signal (all | none | 1,3,...)")
		seed      = fs.Uint64("seed", 1, "random seed for tapes (and loss/random specs)")
		traceFlag = fs.Bool("trace", false, "print the full execution trace")
		spacetime = fs.Bool("spacetime", false, "print the run as a spacetime diagram with ML annotations")
		mcTrials  = fs.Int("mc", 0, "also estimate the outcome distribution with this many Monte-Carlo trials")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, err := cliutil.ParseProtocol(*protoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	g, err := cliutil.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	inputs, err := cliutil.ParseInputs(*inputSpec, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := cliutil.ParseRun(*runSpec, g, *rounds, inputs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Fprintf(out, "protocol: %s\ngraph:    %v\nrun:      %v\n", p.Name(), g, r)

	if *spacetime {
		diagram, err := trace.Spacetime(r, g.NumVertices(), g.NumVertices() >= 2)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprint(out, diagram)
	}
	exec, err := sim.Execute(p, g, r, sim.SeedTapes(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *traceFlag {
		for i := 1; i < len(exec.Locals); i++ {
			le := exec.Locals[i]
			fmt.Fprintf(out, "-- process %d (input=%v)\n", le.ID, le.Input)
			for round, rec := range le.Rounds {
				fmt.Fprintf(out, "   round %d:", round+1)
				for _, s := range rec.Sent {
					fate := "lost"
					if s.Delivered {
						fate = "ok"
					}
					fmt.Fprintf(out, " send→%d[%s]", s.To, fate)
				}
				for _, rcv := range rec.Received {
					fmt.Fprintf(out, " recv←%d", rcv.From)
				}
				fmt.Fprintln(out)
			}
		}
	}
	outs := exec.Outputs()
	fmt.Fprintf(out, "outputs:  %v\noutcome:  %v\n", outs[1:], exec.Outcome())

	if *mcTrials > 0 {
		res, err := mc.Estimate(mc.Config{
			Protocol: p, Graph: g, Run: r, Trials: *mcTrials, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "mc(%d):   Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n",
			*mcTrials, res.TA.Mean(), res.PA.Mean(), res.NA.Mean())
	}
	switch proto := p.(type) {
	case *core.S:
		a, err := proto.Analyze(g, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f  ML(R)=%d L(R)=%d bound=%.4f\n",
			a.PTotal, a.PPartial, a.PNone, a.ModMin, a.LevelMin, a.Bound)
	case baseline.A:
		d, err := baseline.AnalyzeA(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n", d.PTotal, d.PPartial, d.PNone)
	case *baseline.RepeatedA:
		d, err := baseline.AnalyzeRepeatedA(proto, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(out, "exact:    Pr[TA]=%.4f Pr[PA]=%.4f Pr[NA]=%.4f\n", d.PTotal, d.PPartial, d.PNone)
	}
	return 0
}
