package main

import (
	"strings"
	"testing"
)

func TestSimGoodRunS(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4", "-run", "good"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"S(ε=0.5)", "outcome:", "exact:", "ML(R)="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimTraceProtocolA(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "a", "-graph", "pair", "-rounds", "6", "-run", "cut:3", "-trace"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"-- process 1", "round 1:", "send→2", "exact:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimRepeatedAExact(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "axk:2:all", "-graph", "pair", "-rounds", "8", "-run", "good"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "Pr[TA]=1.0000") {
		t.Errorf("expected certain TA on good run:\n%s", b.String())
	}
}

func TestSimSpacetimeAndCustomRun(t *testing.T) {
	var b strings.Builder
	code := run([]string{
		"-protocol", "a", "-graph", "pair", "-rounds", "4",
		"-run", "custom:N=4;I=1,2;M=2t1r1,1t2r2,2t1r3", "-spacetime",
	}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"P1", "ML=[", "v₀!", "Pr[TA]=0.6667"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimMonteCarloFlag(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4", "-run", "good", "-mc", "2000"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "mc(2000):") {
		t.Errorf("mc output missing:\n%s", b.String())
	}
}

func TestSimFaultFlag(t *testing.T) {
	var b strings.Builder
	code := run([]string{
		"-protocol", "s:0.1", "-graph", "pair", "-rounds", "10",
		"-run", "good", "-fault", "crash:2@4", "-mc", "5000",
	}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"faults:   crash:2@4", "mc(5000):", "faulty:", "Theorem 5.4 ceiling"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimFatalFaultDegradesGracefully(t *testing.T) {
	// A panicking machine kills the showcase execution but must not kill
	// the command: the estimate still runs with failures budgeted.
	var b strings.Builder
	code := run([]string{
		"-protocol", "s:0.2", "-graph", "pair", "-rounds", "4",
		"-run", "good", "-fault", "panicstep:2@2", "-mc", "200",
	}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"execution failed under injected faults", "mc(200):", "trials failed under injected faults"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimFaultRandAndNonOmission(t *testing.T) {
	// Sampled plan: accepted and echoed (plan contents depend on seed).
	var b strings.Builder
	if code := run([]string{
		"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4",
		"-run", "good", "-fault", "rand:1",
	}, &b); code != 0 {
		t.Fatalf("rand plan: exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "faults:   ") {
		t.Errorf("sampled plan not echoed:\n%s", b.String())
	}
	// A stutter fault has no omission-equivalent run: the exact analysis
	// degrades to a notice instead of failing.
	b.Reset()
	if code := run([]string{
		"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4",
		"-run", "good", "-fault", "stutter:1@2",
	}, &b); code != 0 {
		t.Fatalf("stutter plan: exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "not omission-equivalent") {
		t.Errorf("missing non-omission notice:\n%s", b.String())
	}
}

func TestSimBadSpecs(t *testing.T) {
	cases := [][]string{
		{"-protocol", "zzz"},
		{"-graph", "zzz"},
		{"-run", "zzz"},
		{"-inputs", "99"},
		{"-fault", "zzz"},
		{"-fault", "crash:99@1"},
		{"-fault", "rand:2"},
		{"-fault", "rand:NaN"},
		{"-fault", "rand:-Inf"},
		{"-fault", "rand:"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var b strings.Builder
		if code := run(args, &b); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestSimProtocolRunMismatch(t *testing.T) {
	// Protocol A on a 3-general graph: machine construction fails.
	var b strings.Builder
	if code := run([]string{"-protocol", "a", "-graph", "ring:3", "-rounds", "4"}, &b); code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}
