package main

import (
	"strings"
	"testing"
)

func TestSimGoodRunS(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4", "-run", "good"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"S(ε=0.5)", "outcome:", "exact:", "ML(R)="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimTraceProtocolA(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "a", "-graph", "pair", "-rounds", "6", "-run", "cut:3", "-trace"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"-- process 1", "round 1:", "send→2", "exact:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimRepeatedAExact(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "axk:2:all", "-graph", "pair", "-rounds", "8", "-run", "good"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "Pr[TA]=1.0000") {
		t.Errorf("expected certain TA on good run:\n%s", b.String())
	}
}

func TestSimSpacetimeAndCustomRun(t *testing.T) {
	var b strings.Builder
	code := run([]string{
		"-protocol", "a", "-graph", "pair", "-rounds", "4",
		"-run", "custom:N=4;I=1,2;M=2t1r1,1t2r2,2t1r3", "-spacetime",
	}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{"P1", "ML=[", "v₀!", "Pr[TA]=0.6667"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimMonteCarloFlag(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-protocol", "s:0.5", "-graph", "pair", "-rounds", "4", "-run", "good", "-mc", "2000"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "mc(2000):") {
		t.Errorf("mc output missing:\n%s", b.String())
	}
}

func TestSimBadSpecs(t *testing.T) {
	cases := [][]string{
		{"-protocol", "zzz"},
		{"-graph", "zzz"},
		{"-run", "zzz"},
		{"-inputs", "99"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var b strings.Builder
		if code := run(args, &b); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestSimProtocolRunMismatch(t *testing.T) {
	// Protocol A on a 3-general graph: machine construction fails.
	var b strings.Builder
	if code := run([]string{"-protocol", "a", "-graph", "ring:3", "-rounds", "4"}, &b); code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}
