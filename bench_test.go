package coordattack_test

import (
	"testing"

	"coordattack"
	"coordattack/internal/adversary"
	"coordattack/internal/async"
	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/experiments"
	"coordattack/internal/graph"
	"coordattack/internal/knowledge"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/weak"
)

// Experiment benchmarks — one per reproduced table/figure (DESIGN.md §3).
// Each iteration regenerates the full experiment at reduced (Quick)
// fidelity; run `go run ./cmd/coordbench` for the full-fidelity report.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{Quick: true, Trials: 2000, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("%s failed its claim check", id)
		}
	}
}

func BenchmarkT1ProtocolA(b *testing.B)      { benchExperiment(b, "T1") }
func BenchmarkT2ProtocolADrop(b *testing.B)  { benchExperiment(b, "T2") }
func BenchmarkF1TradeoffBound(b *testing.B)  { benchExperiment(b, "F1") }
func BenchmarkT3UnsafetyS(b *testing.B)      { benchExperiment(b, "T3") }
func BenchmarkF2LivenessS(b *testing.B)      { benchExperiment(b, "F2") }
func BenchmarkT4LevelGap(b *testing.B)       { benchExperiment(b, "T4") }
func BenchmarkT5Invariants(b *testing.B)     { benchExperiment(b, "T5") }
func BenchmarkT6SecondBound(b *testing.B)    { benchExperiment(b, "T6") }
func BenchmarkT7Impossibility(b *testing.B)  { benchExperiment(b, "T7") }
func BenchmarkT8WeakAdversary(b *testing.B)  { benchExperiment(b, "T8") }
func BenchmarkT9Topology(b *testing.B)       { benchExperiment(b, "T9") }
func BenchmarkT10Amplification(b *testing.B) { benchExperiment(b, "T10") }
func BenchmarkT12Independence(b *testing.B)  { benchExperiment(b, "T12") }
func BenchmarkT13Exhaustive(b *testing.B)    { benchExperiment(b, "T13") }
func BenchmarkT14Async(b *testing.B)         { benchExperiment(b, "T14") }
func BenchmarkT15WeakExact(b *testing.B)     { benchExperiment(b, "T15") }
func BenchmarkT16AltValidity(b *testing.B)   { benchExperiment(b, "T16") }
func BenchmarkT17Knowledge(b *testing.B)     { benchExperiment(b, "T17") }
func BenchmarkT18RelayVsFlood(b *testing.B)  { benchExperiment(b, "T18") }
func BenchmarkT19FireDist(b *testing.B)      { benchExperiment(b, "T19") }
func BenchmarkT20Certificates(b *testing.B)  { benchExperiment(b, "T20") }
func BenchmarkT21CommCost(b *testing.B)      { benchExperiment(b, "T21") }
func BenchmarkT11Engines(b *testing.B)       { benchExperiment(b, "T11") }

// Micro-benchmarks — the hot paths under the experiments.

func benchSetup(b *testing.B, m, n int) (*graph.G, *run.Run, *core.S) {
	b.Helper()
	g, err := graph.Complete(m)
	if err != nil {
		b.Fatal(err)
	}
	r, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		b.Fatal(err)
	}
	return g, r, core.MustS(0.1)
}

// BenchmarkLoopEngine measures one full Protocol S execution on the loop
// engine (the Monte-Carlo hot path).
func BenchmarkLoopEngine(b *testing.B) {
	g, r, s := benchSetup(b, 8, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Outputs(s, g, r, sim.SeedTapes(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelEngine measures the goroutine-per-general engine on the
// same workload, for comparison with BenchmarkLoopEngine.
func BenchmarkChannelEngine(b *testing.B) {
	g, r, s := benchSetup(b, 8, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ConcurrentOutputs(s, g, r, sim.SeedTapes(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactAnalysis measures the closed-form Protocol S analysis
// (level tables + probability arithmetic).
func BenchmarkExactAnalysis(b *testing.B) {
	g, r, s := benchSetup(b, 8, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Analyze(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLevelTable measures the §4 level computation alone.
func BenchmarkLevelTable(b *testing.B) {
	g, r, _ := benchSetup(b, 8, 16)
	_ = g
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := causality.NewLevelTable(r, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClip measures Clip_i(R) on a dense run.
func BenchmarkClip(b *testing.B) {
	_, r, _ := benchSetup(b, 8, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		causality.Clip(r, 8, 1)
	}
}

// BenchmarkMonteCarlo1k measures a 1000-trial estimation job end to end
// (parallel workers included).
func BenchmarkMonteCarlo1k(b *testing.B) {
	g, r, s := benchSetup(b, 4, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Estimate(mc.Config{
			Protocol: s, Graph: g, Run: r, Trials: 1000, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHillClimb measures a short adversary search with the exact
// objective.
func BenchmarkHillClimb(b *testing.B) {
	g := graph.Pair()
	s := core.MustS(0.1)
	obj := adversary.ExactSObjective(s, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.HillClimb(g, 8, obj, adversary.HillConfig{
			Restarts: 1, Steps: 20, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeakExact measures the closed-form weak-adversary Markov
// chain over a long horizon.
func BenchmarkWeakExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := weak.Exact(60, 0.05, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnowledgeSpace measures building a full epistemic space and
// computing one knowledge depth (the T17 hot path).
func BenchmarkKnowledgeSpace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := knowledge.NewSpace(graph.Pair(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Depth(1, knowledge.InputArrived, s.Runs()[100]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncInducedRun measures the asynchronous-model reduction.
func BenchmarkAsyncInducedRun(b *testing.B) {
	g, err := graph.Ring(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := async.InducedRun(async.Config{
			G: g, N: 16, Timeout: 3, Latency: async.FixedLatency(2),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeQuickstart measures the public-API quickstart flow.
func BenchmarkFacadeQuickstart(b *testing.B) {
	g := coordattack.Pair()
	s, err := coordattack.NewS(0.05)
	if err != nil {
		b.Fatal(err)
	}
	r, err := coordattack.GoodRun(g, 30, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Analyze(g, r); err != nil {
			b.Fatal(err)
		}
		if _, err := coordattack.Outputs(s, g, r, coordattack.SeedTapes(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
