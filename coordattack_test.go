package coordattack_test

import (
	"fmt"
	"log"
	"math"
	"testing"

	"coordattack"
)

// Example reproduces the doc-comment quickstart.
func Example() {
	g := coordattack.Pair()
	s, err := coordattack.NewS(0.01)
	if err != nil {
		log.Fatal(err)
	}
	r, err := coordattack.GoodRun(g, 100, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr[all attack] = %.2f, Pr[disagree] = %.2f\n", a.PTotal, a.PPartial)
	// Output:
	// Pr[all attack] = 1.00, Pr[disagree] = 0.00
}

func TestFacadeEndToEnd(t *testing.T) {
	// Build every public artifact once, end to end.
	g, err := coordattack.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := coordattack.NewS(0.1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := coordattack.GoodRun(g, 10, 1, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := coordattack.Outputs(s, g, r, coordattack.SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := coordattack.ConcurrentOutputs(s, g, r, coordattack.SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i] != conc[i] {
			t.Fatal("engines disagree through the facade")
		}
	}
	exec, err := coordattack.Execute(s, g, r, coordattack.SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	if exec.Outcome() != coordattack.Classify(outs) {
		t.Error("trace outcome differs from outputs classification")
	}

	ml, err := coordattack.RunModLevel(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := coordattack.RunLevel(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ml > l || ml < l-1 {
		t.Errorf("facade levels inconsistent: L=%d ML=%d", l, ml)
	}
	if b := coordattack.TradeoffBound(0.1, l); b <= 0 || b > 1 {
		t.Errorf("bound = %v", b)
	}

	clip := coordattack.Clip(r, 5, 1)
	if !clip.SubsetOf(r) {
		t.Error("clip not a subset via facade")
	}

	res, err := coordattack.Estimate(coordattack.MCConfig{
		Protocol: s, Graph: g, Run: r, Trials: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TA.Mean()-a.PTotal) > 0.05 {
		t.Errorf("facade MC %v vs exact %v", res.TA.Mean(), a.PTotal)
	}

	v, err := coordattack.FindViolation(deterministicFullInfo{}, coordattack.Pair(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Run == nil {
		t.Error("no violation witness")
	}
}

// deterministicFullInfo is a minimal deterministic protocol written
// against the public facade only — demonstrating that downstream users
// can implement their own protocols.
type deterministicFullInfo struct{}

func (deterministicFullInfo) Name() string { return "user-protocol" }

func (deterministicFullInfo) NewMachine(cfg coordattack.Config) (coordattack.Machine, error) {
	return &userMachine{valid: cfg.Input, degree: cfg.G.Degree(cfg.ID)}, nil
}

type userMsg struct{ Valid bool }

func (userMsg) CAMessage() {}

type userMachine struct {
	valid   bool
	degree  int
	missing bool
}

func (u *userMachine) Send(round int, to coordattack.ProcID) coordattack.Message {
	return userMsg{Valid: u.valid}
}

func (u *userMachine) Step(round int, received []coordattack.Received) error {
	if len(received) < u.degree {
		u.missing = true
	}
	for _, r := range received {
		if msg, ok := r.Msg.(userMsg); ok && msg.Valid {
			u.valid = true
		}
	}
	return nil
}

func (u *userMachine) Output() bool { return u.valid && !u.missing }
