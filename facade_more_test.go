package coordattack_test

import (
	"math"
	"strings"
	"testing"

	"coordattack"
)

func TestFacadeGraphConstructors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*coordattack.Graph, error)
		m, e  int
	}{
		{"complete", func() (*coordattack.Graph, error) { return coordattack.Complete(4) }, 4, 6},
		{"ring", func() (*coordattack.Graph, error) { return coordattack.Ring(5) }, 5, 5},
		{"line", func() (*coordattack.Graph, error) { return coordattack.Line(4) }, 4, 3},
		{"star", func() (*coordattack.Graph, error) { return coordattack.Star(4) }, 4, 3},
		{"new", func() (*coordattack.Graph, error) {
			return coordattack.NewGraph(3, []coordattack.Edge{{A: 1, B: 2}, {A: 2, B: 3}})
		}, 3, 2},
	}
	for _, tc := range cases {
		g, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if g.NumVertices() != tc.m || g.NumEdges() != tc.e {
			t.Errorf("%s: m=%d e=%d, want %d/%d", tc.name, g.NumVertices(), g.NumEdges(), tc.m, tc.e)
		}
	}
	if g := coordattack.Pair(); g.NumVertices() != 2 {
		t.Error("Pair wrong")
	}
}

func TestFacadeRunHelpers(t *testing.T) {
	g := coordattack.Pair()
	empty, err := coordattack.NewRun(3)
	if err != nil || empty.N() != 3 {
		t.Fatalf("NewRun: %v", err)
	}
	silent, err := coordattack.SilentRun(3, 1)
	if err != nil || !silent.HasInput(1) || silent.NumDeliveries() != 0 {
		t.Fatalf("SilentRun: %v", err)
	}
	good, err := coordattack.GoodRun(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cut := coordattack.CutAt(good, 2); cut.Delivered(1, 2, 2) || !cut.Delivered(1, 2, 1) {
		t.Error("CutAt wrong")
	}
	ring, err := coordattack.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := coordattack.TreeRun(ring, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := coordattack.RunModLevel(tree, 4)
	if err != nil || ml != 1 {
		t.Errorf("tree ML = %d, %v; want 1", ml, err)
	}
	tape := coordattack.NewStream(3).Tape(0, 0)
	lossy, err := coordattack.RandomLossRun(g, 4, 0.5, tape, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.N() != 4 {
		t.Error("RandomLossRun horizon wrong")
	}
}

func TestFacadeLevelsAndBounds(t *testing.T) {
	g := coordattack.Pair()
	good, err := coordattack.GoodRun(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := coordattack.Levels(good, 2)
	if err != nil || levels[1] != 5 {
		t.Errorf("Levels = %v, %v", levels, err)
	}
	mls, err := coordattack.ModLevels(good, 2)
	if err != nil || (mls[1] != 4 && mls[1] != 5) {
		t.Errorf("ModLevels = %v, %v", mls, err)
	}
	l, err := coordattack.RunLevel(good, 2)
	if err != nil || l != 5 {
		t.Errorf("RunLevel = %d, %v", l, err)
	}
	if b := coordattack.TradeoffBound(0.1, l); math.Abs(b-0.5) > 1e-12 {
		t.Errorf("TradeoffBound = %v", b)
	}
}

func TestFacadeProtocolVariants(t *testing.T) {
	if _, err := coordattack.NewSWithSlack(0.1, 1); err != nil {
		t.Error(err)
	}
	alt, err := coordattack.NewSAltValidity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if alt.FireFloor() != 1 {
		t.Error("alt validity floor wrong")
	}
	a := coordattack.NewA()
	if a.Name() != "A" {
		t.Error("A name wrong")
	}
	if coordattack.Classify([]bool{false, true, false}) != coordattack.PartialAttack {
		t.Error("Classify wrong")
	}
	for _, o := range []coordattack.Outcome{coordattack.NoAttack, coordattack.TotalAttack} {
		if o.String() == "" {
			t.Error("outcome string empty")
		}
	}
}

func TestFacadeAsync(t *testing.T) {
	g, err := coordattack.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := coordattack.NewS(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tape := coordattack.NewStream(9).Tape(0, 0)
	lat, err := coordattack.RandomLatency(1, 3, 0.1, tape)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coordattack.AsyncConfig{
		G: g, N: 6, Timeout: 2, Latency: lat,
		Inputs: []coordattack.ProcID{1, 2, 3, 4},
	}
	induced, enter, err := coordattack.AsyncInducedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if induced.N() != 6 || len(enter) != 5 {
		t.Error("induced run shape wrong")
	}
	res, err := coordattack.AsyncExecute(s, cfg, coordattack.SeedTapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome().String() == "" {
		t.Error("async outcome empty")
	}
	evres, err := coordattack.AsyncEventExecute(s, cfg, coordattack.SeedTapes(5))
	if err != nil {
		t.Fatal(err)
	}
	if !evres.Induced.Equal(res.Induced) {
		t.Error("event engine and reduction disagree through the facade")
	}
	fixed := coordattack.FixedLatency(1)
	if ticks, drop := fixed(1, 2, 3); ticks != 1 || drop {
		t.Error("FixedLatency wrong")
	}
}

func TestFacadePlanningAndCertificate(t *testing.T) {
	g := coordattack.Pair()
	if err := coordattack.UsualCase(g, 5, 0.1); err != nil {
		t.Error(err)
	}
	plan, err := coordattack.RecommendEpsilon(g, 10, 1)
	if err != nil || math.Abs(plan.Epsilon-0.1) > 1e-12 {
		t.Errorf("RecommendEpsilon = %+v, %v", plan, err)
	}
	plan2, err := coordattack.RecommendRounds(g, 0.1, 1, 50)
	if err != nil || plan2.Rounds != 10 {
		t.Errorf("RecommendRounds = %+v, %v", plan2, err)
	}
	s, err := coordattack.NewS(0.1)
	if err != nil {
		t.Fatal(err)
	}
	good, err := coordattack.GoodRun(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := coordattack.Certify(s, g, good, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Steps) == 0 || !strings.Contains(cert.String(), "certificate") {
		t.Error("certificate malformed")
	}
	attack, budget := cert.Bound()
	if attack > budget+1e-12 {
		t.Errorf("certified bound violated: %v > %v", attack, budget)
	}
}

func TestFacadeWeakSampler(t *testing.T) {
	g := coordattack.Pair()
	s, err := coordattack.NewS(0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coordattack.Estimate(coordattack.MCConfig{
		Protocol: s, Graph: g,
		Sampler: coordattack.WeakSampler(g, 10, 0, 1, 2),
		Trials:  500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TA.Mean() != 1 {
		t.Errorf("lossless weak liveness %v, want 1 (ε·ML = 2)", res.TA)
	}
}
